"""Tests for the optimization strategies (Omega)."""

import pytest

from repro.comm.offload import OffloadPlanner
from repro.core.optimizations import (
    ACTION_GATED,
    ACTION_IDLE,
    ACTION_LOCAL,
    ACTION_OFFLOAD,
    ACTION_RESPONSE,
    ACTION_SENSOR_GATED,
    GatingStrategy,
    LocalOnlyStrategy,
    OffloadStrategy,
    PeriodContext,
    make_strategy_factory,
)
from repro.core.models import SensoryModel
from repro.platform.presets import DRIVE_PX2_RESNET152, NAVTECH_RADAR, ZERO_POWER_SENSOR

TAU = 0.02


def _model(period_multiple=1, sensor=NAVTECH_RADAR) -> SensoryModel:
    return SensoryModel(
        name="det",
        period_s=period_multiple * TAU,
        compute=DRIVE_PX2_RESNET152,
        sensor=sensor,
    )


def _context(n, delta_i, delta_max, natural=None, full=None, global_step=None):
    natural_slot = natural if natural is not None else (n % delta_i == 0)
    if full is None:
        full = natural_slot if delta_i >= delta_max else n == delta_max - delta_i
    full_slot = full
    return PeriodContext(
        interval_step=n,
        global_step=global_step if global_step is not None else n,
        delta_i=delta_i,
        delta_max=delta_max,
        natural_slot=natural_slot,
        full_slot=full_slot,
        tau_s=TAU,
    )


class TestLocalOnlyStrategy:
    def test_natural_slot_runs_local(self, rng):
        strategy = LocalOnlyStrategy(_model())
        execution = strategy.execute_period(_context(0, 1, 4), rng)
        assert execution.action == ACTION_LOCAL
        assert execution.fresh_output
        assert execution.compute_energy_j == pytest.approx(0.119)

    def test_off_slot_only_sensor(self, rng):
        strategy = LocalOnlyStrategy(_model(period_multiple=2))
        execution = strategy.execute_period(_context(1, 2, 4), rng)
        assert execution.action == ACTION_IDLE
        assert execution.compute_energy_j == 0.0
        assert execution.sensor_measurement_energy_j > 0.0


class TestGatingStrategy:
    def test_full_slot_runs_local(self, rng):
        strategy = GatingStrategy(_model(), gate_sensor=False)
        execution = strategy.execute_period(_context(3, 1, 4), rng)
        assert execution.action == ACTION_LOCAL
        assert execution.fresh_output

    def test_model_gating_keeps_measurement_on(self, rng):
        strategy = GatingStrategy(_model(), gate_sensor=False)
        execution = strategy.execute_period(_context(0, 1, 4), rng)
        assert execution.action == ACTION_GATED
        assert not execution.fresh_output
        assert execution.compute_energy_j == 0.0
        assert execution.sensor_measurement_energy_j == pytest.approx(TAU * 21.6)

    def test_sensor_gating_cuts_measurement_until_final_window(self, rng):
        strategy = GatingStrategy(_model(), gate_sensor=True)
        gated = strategy.execute_period(_context(0, 1, 4), rng)
        assert gated.action == ACTION_SENSOR_GATED
        assert gated.sensor_measurement_energy_j == 0.0
        assert gated.sensor_mechanical_energy_j == pytest.approx(TAU * 2.4)

    def test_sensor_gating_measures_during_final_window(self, rng):
        strategy = GatingStrategy(_model(period_multiple=2), gate_sensor=True)
        # delta_i = 2, delta_max = 4 -> fallback slot at n = 2; n = 3 belongs to
        # the measurement window that feeds the mandatory run.
        measuring = strategy.execute_period(_context(3, 2, 4, full=False), rng)
        assert measuring.sensor_measurement_energy_j > 0.0

    def test_no_optimization_when_delta_i_reaches_deadline(self, rng):
        strategy = GatingStrategy(_model(period_multiple=2), gate_sensor=True)
        execution = strategy.execute_period(_context(1, 2, 2, natural=False, full=False), rng)
        assert execution.action == ACTION_IDLE
        assert execution.sensor_measurement_energy_j > 0.0

    def test_interval_energy_matches_analytic_model(self, rng):
        from repro.core.energy import gating_interval_energy_j

        model = _model(period_multiple=1)
        for gate_sensor in (False, True):
            strategy = GatingStrategy(model, gate_sensor=gate_sensor)
            delta_max = 4
            total = 0.0
            for n in range(delta_max):
                total += strategy.execute_period(_context(n, 1, delta_max), rng).total_energy_j
            assert total == pytest.approx(
                gating_interval_energy_j(model, TAU, delta_max, gate_sensor)
            )


class TestOffloadStrategy:
    def _strategy(self, model=None, payload=28_000):
        model = model if model is not None else _model(sensor=ZERO_POWER_SENSOR)
        return OffloadStrategy(model, planner=OffloadPlanner(payload_bytes=payload))

    def test_offloads_on_optimizable_natural_slot(self, rng):
        strategy = self._strategy()
        strategy.begin_interval(1, 4, rng)
        execution = strategy.execute_period(_context(0, 1, 4), rng)
        assert execution.action == ACTION_OFFLOAD
        assert execution.offload_issued
        assert execution.transmission_energy_j > 0.0
        assert execution.compute_energy_j == 0.0

    def test_full_slot_runs_local(self, rng):
        strategy = self._strategy()
        strategy.begin_interval(1, 4, rng)
        execution = strategy.execute_period(_context(3, 1, 4), rng)
        assert execution.action == ACTION_LOCAL
        assert execution.compute_energy_j == pytest.approx(0.119)

    def test_response_arrives_later(self, rng):
        strategy = self._strategy()
        strategy.begin_interval(1, 4, rng)
        strategy.execute_period(_context(0, 1, 4), rng)
        # The response lands one or two periods later, producing a fresh output.
        fresh = []
        for n in (1, 2):
            execution = strategy.execute_period(_context(n, 1, 4), rng)
            fresh.append(execution.fresh_output)
        assert any(fresh)

    def test_infeasible_offload_runs_local_instead(self, rng):
        # A huge payload cannot make the deadline; the model must run locally.
        strategy = self._strategy(payload=5_000_000)
        strategy.begin_interval(1, 4, rng)
        execution = strategy.execute_period(_context(0, 1, 4), rng)
        assert execution.action == ACTION_LOCAL
        assert not execution.offload_issued

    def test_no_optimization_when_deadline_too_short(self, rng):
        strategy = self._strategy(_model(period_multiple=2, sensor=ZERO_POWER_SENSOR))
        strategy.begin_interval(2, 2, rng)
        execution = strategy.execute_period(_context(0, 2, 2), rng)
        assert execution.action == ACTION_LOCAL

    def test_begin_interval_clears_pending_responses(self, rng):
        strategy = self._strategy()
        strategy.begin_interval(1, 4, rng)
        strategy.execute_period(_context(0, 1, 4), rng)
        strategy.begin_interval(1, 4, rng)
        execution = strategy.execute_period(_context(1, 1, 4, natural=False, full=False), rng)
        assert not execution.fresh_output


class _FixedPlanner:
    """Stub planner with a pinned estimate and a pinned realized round trip."""

    def __init__(self, estimate_periods, sample_periods=None):
        self.estimate_periods = estimate_periods
        self.sample_periods = (
            sample_periods if sample_periods is not None else estimate_periods
        )

    def estimated_response_periods(self, tau_s):
        return self.estimate_periods

    def sample(self, tau_s, rng):
        from repro.comm.offload import OffloadOutcome

        return OffloadOutcome(
            transmission_time_s=self.sample_periods * tau_s,
            round_trip_s=self.sample_periods * tau_s,
            transmission_energy_j=0.01,
            response_periods=self.sample_periods,
        )


class TestOffloadDeadlineBoundary:
    """Regression for the exact-boundary case ``arrival == fallback_slot``.

    Issuance (``interval_step + delta_hat <= fallback_slot``) and the miss
    test (``arrival > fallback_slot``) both say a response landing exactly at
    the fallback slot meets the deadline — but the full-slot branch used to
    run the mandatory local model without ever checking pending arrivals, so
    such a response was silently dropped: transmission energy and a full
    local inference were both paid and the server output discarded.  Per
    eq. (6) the fallback local run exists to cover *late* offloads; a
    response arriving at the fallback slot supersedes it.
    """

    def test_expected_arrival_at_fallback_slot_is_feasible(self, rng):
        # delta_i = 1, delta_max = 4 -> fallback slot at n = 3.  From n = 0 an
        # estimated 3-period round trip lands exactly on the fallback slot,
        # which still meets the deadline: the offload must be issued.
        strategy = OffloadStrategy(
            _model(sensor=ZERO_POWER_SENSOR), planner=_FixedPlanner(3)
        )
        strategy.begin_interval(1, 4, rng)
        execution = strategy.execute_period(_context(0, 1, 4), rng)
        assert execution.action == ACTION_OFFLOAD
        assert execution.offload_issued
        assert not execution.offload_deadline_missed

    def test_arrival_at_fallback_slot_supersedes_local_run(self, rng):
        strategy = OffloadStrategy(
            _model(sensor=ZERO_POWER_SENSOR), planner=_FixedPlanner(3)
        )
        strategy.begin_interval(1, 4, rng)
        strategy.execute_period(_context(0, 1, 4), rng)
        # n = 1, 2: nothing has arrived yet (and further offloads would land
        # past the fallback slot, so the model runs locally).
        for n in (1, 2):
            execution = strategy.execute_period(_context(n, 1, 4), rng)
            assert not execution.offload_issued
            assert execution.action == ACTION_LOCAL
        # n = 3 (the fallback slot): the response lands and replaces the
        # mandatory local run — fresh output with zero compute energy.
        fallback = strategy.execute_period(_context(3, 1, 4), rng)
        assert fallback.action == ACTION_RESPONSE
        assert fallback.fresh_output
        assert fallback.compute_energy_j == 0.0

    def test_arrival_past_fallback_slot_is_a_miss(self, rng):
        # Feasible estimate (1 period) but the realized round trip takes 4:
        # arrival = 0 + 4 > fallback slot 3, a deadline miss the fallback
        # local run must cover.
        strategy = OffloadStrategy(
            _model(sensor=ZERO_POWER_SENSOR),
            planner=_FixedPlanner(1, sample_periods=4),
        )
        strategy.begin_interval(1, 4, rng)
        issued = strategy.execute_period(_context(0, 1, 4), rng)
        assert issued.action == ACTION_OFFLOAD
        assert issued.offload_issued
        assert issued.offload_deadline_missed
        fallback = strategy.execute_period(_context(3, 1, 4), rng)
        assert fallback.action == ACTION_LOCAL
        assert fallback.fresh_output
        assert fallback.compute_energy_j > 0.0

    def test_arrival_strictly_before_fallback_slot_is_not_a_miss(self, rng):
        strategy = OffloadStrategy(
            _model(sensor=ZERO_POWER_SENSOR),
            planner=_FixedPlanner(1, sample_periods=2),
        )
        strategy.begin_interval(1, 4, rng)
        issued = strategy.execute_period(_context(0, 1, 4), rng)
        assert issued.offload_issued
        assert not issued.offload_deadline_missed
        response = strategy.execute_period(_context(2, 1, 4, natural=False, full=False), rng)
        assert response.fresh_output


class TestStrategyFactory:
    def test_known_methods(self):
        model = _model()
        assert isinstance(make_strategy_factory("none")(model), LocalOnlyStrategy)
        assert isinstance(make_strategy_factory("offload")(model), OffloadStrategy)
        gating = make_strategy_factory("model_gating")(model)
        assert isinstance(gating, GatingStrategy) and not gating.gate_sensor
        sensor_gating = make_strategy_factory("sensor_gating")(model)
        assert isinstance(sensor_gating, GatingStrategy) and sensor_gating.gate_sensor

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            make_strategy_factory("quantization")(_model())

    def test_planner_factory_is_used(self):
        shared = OffloadPlanner(payload_bytes=12_345)
        factory = make_strategy_factory("offload", planner_factory=lambda model: shared)
        strategy = factory(_model())
        assert strategy.planner is shared
