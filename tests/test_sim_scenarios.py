"""Tests for the scenario-diversity subsystem: segment roads, the Frenet
frame, obstacle motion, sensor degradation, and the sim-layer bugfix
regressions (sample-slot anchoring, unified nearest-threat queries, road
extent clamping, full-circle beam grids)."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.control.heuristic import ObstacleAvoidanceController
from repro.core.framework import SEOConfig, SEOFramework
from repro.dynamics.state import VehicleState, wrap_angle
from repro.sim.episode import EpisodeRunner
from repro.sim.obstacles import (
    ConstantVelocity,
    Obstacle,
    WaypointLoop,
    attach_motion,
)
from repro.sim.observation import RangeScanner
from repro.sim.road import ArcSegment, Road, StraightSegment
from repro.sim.scenario import DEFAULT_SUITE, ScenarioConfig, build_world
from repro.sim.sensors import SimulatedSensor
from repro.sim.world import World


def _curved_road(width_m: float = 10.0) -> Road:
    return Road(
        width_m=width_m,
        segments=(
            StraightSegment(20.0),
            ArcSegment(radius_m=40.0, sweep_rad=math.radians(45.0)),
            StraightSegment(15.0),
            ArcSegment(radius_m=40.0, sweep_rad=math.radians(-45.0)),
            StraightSegment(10.0),
        ),
    )


# ----------------------------------------------------------------------
# Segment geometry and the Frenet frame
# ----------------------------------------------------------------------
class TestSegments:
    def test_segment_validation(self):
        with pytest.raises(ValueError):
            StraightSegment(0.0)
        with pytest.raises(ValueError):
            ArcSegment(radius_m=0.0, sweep_rad=0.5)
        with pytest.raises(ValueError):
            ArcSegment(radius_m=10.0, sweep_rad=0.0)
        with pytest.raises(ValueError):
            ArcSegment(radius_m=10.0, sweep_rad=3.5)

    def test_arc_length(self):
        arc = ArcSegment(radius_m=50.0, sweep_rad=math.radians(90.0))
        assert arc.length_m == pytest.approx(50.0 * math.pi / 2.0)

    def test_road_length_derived_from_segments(self):
        road = Road(segments=(StraightSegment(30.0), ArcSegment(50.0, 0.5)))
        assert road.length_m == pytest.approx(30.0 + 25.0)
        assert not road.is_straight

    def test_default_road_is_straight_single_segment(self):
        road = Road(length_m=100.0)
        assert road.is_straight
        assert road.length_m == 100.0

    def test_straight_road_frenet_is_exact_identity(self):
        # The generalized geometry must keep the paper's straight road
        # bit-identical: (s, d) == (x, y) with no floating-point drift.
        road = Road(length_m=100.0, width_m=8.0)
        for x, y in [(0.0, 0.0), (12.34, -1.7), (99.99, 3.2), (55.5, 0.0)]:
            s, d = road.to_frenet(x, y)
            assert s == x and d == y
            assert road.from_frenet(s, d) == (x, y)
        assert road.heading_at(42.0) == 0.0
        assert road.curvature_at(42.0) == 0.0

    def test_arc_geometry_quarter_circle(self):
        road = Road(segments=(ArcSegment(radius_m=50.0, sweep_rad=0.5 * math.pi),))
        end_x, end_y = road.from_frenet(road.length_m, 0.0)
        # A left quarter circle of radius 50 ends at (50, 50) heading +90 deg.
        assert end_x == pytest.approx(50.0, abs=1e-9)
        assert end_y == pytest.approx(50.0, abs=1e-9)
        assert road.heading_at(road.length_m) == pytest.approx(0.5 * math.pi)
        assert road.curvature_at(1.0) == pytest.approx(1.0 / 50.0)

    def test_heading_continuous_at_joints(self):
        road = _curved_road()
        boundaries = np.cumsum(
            [0.0] + [segment.length_m for segment in road.segments]
        )
        for s in boundaries[1:-1]:
            before = road.heading_at(s - 1e-6)
            after = road.heading_at(s + 1e-6)
            assert wrap_angle(after - before) == pytest.approx(0.0, abs=1e-4)

    def test_centerline_continuous_at_joints(self):
        road = _curved_road()
        for s in np.linspace(0.5, road.length_m - 0.5, 200):
            p0 = road.from_frenet(s - 0.01, 0.0)
            p1 = road.from_frenet(s + 0.01, 0.0)
            assert math.hypot(p1[0] - p0[0], p1[1] - p0[1]) == pytest.approx(
                0.02, abs=1e-6
            )

    def test_lane_pose_on_curve(self):
        road = Road(segments=(ArcSegment(radius_m=50.0, sweep_rad=0.5 * math.pi),))
        x, y = road.from_frenet(30.0, 1.5)
        pose = road.lane_pose(
            VehicleState(x_m=x, y_m=y, heading_rad=wrap_angle(30.0 / 50.0))
        )
        assert pose.arc_length_m == pytest.approx(30.0, abs=1e-6)
        assert pose.lateral_offset_m == pytest.approx(1.5, abs=1e-6)
        assert pose.heading_error_rad == pytest.approx(0.0, abs=1e-9)
        assert pose.curvature_per_m == pytest.approx(0.02)


segment_lists = st.lists(
    st.one_of(
        st.floats(8.0, 40.0).map(StraightSegment),
        st.tuples(
            st.floats(30.0, 80.0),
            st.floats(math.radians(10.0), math.radians(50.0)),
            st.booleans(),
        ).map(
            lambda t: ArcSegment(radius_m=t[0], sweep_rad=t[1] if t[2] else -t[1])
        ),
    ),
    min_size=1,
    max_size=4,
)


def _max_cumulative_heading(segments) -> float:
    heading = 0.0
    worst = 0.0
    for segment in segments:
        if isinstance(segment, ArcSegment):
            heading += segment.sweep_rad
        worst = max(worst, abs(heading))
    return worst


class TestFrenetRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(
        segments=segment_lists,
        s_fraction=st.floats(0.0, 1.0),
        d=st.floats(-6.0, 6.0),
    )
    def test_round_trip_across_segment_boundaries(self, segments, s_fraction, d):
        # Keep the generated roads gently curved so the nearest-point
        # projection is unambiguous within the sampled lateral band.
        assume(_max_cumulative_heading(segments) < 1.2)
        road = Road(width_m=14.0, segments=tuple(segments))
        s = s_fraction * road.length_m
        x, y = road.from_frenet(s, d)
        s_back, d_back = road.to_frenet(x, y)
        assert s_back == pytest.approx(s, abs=1e-6)
        assert d_back == pytest.approx(d, abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(
        radius=st.floats(30.0, 80.0),
        sweep=st.floats(math.radians(15.0), math.radians(60.0)),
        d=st.floats(-5.0, 5.0),
        offset=st.floats(-2.0, 2.0),
    )
    def test_round_trip_at_arc_straight_joint(self, radius, sweep, d, offset):
        road = Road(
            width_m=12.0,
            segments=(
                StraightSegment(20.0),
                ArcSegment(radius_m=radius, sweep_rad=sweep),
                StraightSegment(20.0),
            ),
        )
        s = 20.0 + radius * sweep + offset  # straddle the arc->straight joint
        s = min(max(s, 0.0), road.length_m)
        x, y = road.from_frenet(s, d)
        s_back, d_back = road.to_frenet(x, y)
        assert s_back == pytest.approx(s, abs=1e-6)
        assert d_back == pytest.approx(d, abs=1e-6)


# ----------------------------------------------------------------------
# Road extent clamping (bugfix regressions)
# ----------------------------------------------------------------------
class TestRoadExtent:
    def test_contains_bounded_above_by_length(self):
        road = Road(length_m=100.0, width_m=8.0)
        assert road.contains(99.0, 0.0)
        assert not road.contains(101.0, 0.0)
        assert not road.contains(-1.0, 0.0)

    def test_ray_edge_hits_clamped_to_route_extent(self):
        road = Road(length_m=100.0, width_m=8.0)
        # From mid-road, a diagonal ray hits the edge inside the extent.
        inside = road.ray_edge_distance((50.0, 0.0), (math.cos(0.3), math.sin(0.3)), 40.0)
        assert inside == pytest.approx(road.half_width_m / math.sin(0.3))
        # From near the end, the same ray would only cross the edge line
        # beyond x = 100 — that is open space, not a road edge.
        beyond = road.ray_edge_distance((99.0, 0.0), (math.cos(0.3), math.sin(0.3)), 40.0)
        assert beyond is None

    def test_scan_reports_no_edges_beyond_route_end(self):
        road = Road(length_m=100.0, width_m=8.0)
        world = World(road=road, obstacles=[], state=VehicleState(x_m=99.5))
        scan = RangeScanner(num_beams=9, max_range_m=30.0).scan(world)
        # Every beam points forward out of the route: nothing to hit.
        assert np.all(scan == 30.0)

    def test_curved_road_edge_distance_matches_geometry(self):
        road = Road(width_m=10.0, segments=(ArcSegment(radius_m=50.0, sweep_rad=1.0),))
        # From the centreline pointing radially outward (to the left, +y at
        # the arc start), the edge is half a width away.
        x, y = road.from_frenet(20.0, 0.0)
        heading = road.heading_at(20.0)
        direction = (math.cos(heading + 0.5 * math.pi), math.sin(heading + 0.5 * math.pi))
        hit = road.ray_edge_distance((x, y), direction, 40.0)
        assert hit == pytest.approx(road.half_width_m, abs=1e-3)

    def test_off_road_and_progress_on_curve(self):
        road = _curved_road(width_m=10.0)
        x, y = road.from_frenet(40.0, 6.5)
        assert road.off_road(VehicleState(x_m=x, y_m=y))
        x, y = road.from_frenet(40.0, 2.0)
        state = VehicleState(x_m=x, y_m=y)
        assert not road.off_road(state)
        assert road.progress(state) == pytest.approx(40.0 / road.length_m, abs=1e-6)
        end_x, end_y = road.from_frenet(road.length_m, 0.0)
        assert road.finished(VehicleState(x_m=end_x, y_m=end_y))


# ----------------------------------------------------------------------
# Beam grid (full-circle endpoint bugfix)
# ----------------------------------------------------------------------
class TestBeamAngles:
    def test_full_circle_fov_is_endpoint_exclusive(self):
        scanner = RangeScanner(num_beams=8, fov_rad=2.0 * math.pi)
        angles = scanner.beam_angles()
        assert len(angles) == 8
        spacing = 2.0 * math.pi / 8
        assert np.allclose(np.diff(angles), spacing)
        # -pi and +pi are the same direction; only one of them may appear.
        assert angles[-1] == pytest.approx(math.pi - spacing)
        directions = {(round(math.cos(a), 9), round(math.sin(a), 9)) for a in angles}
        assert len(directions) == 8

    def test_partial_fov_keeps_inclusive_endpoints(self):
        scanner = RangeScanner(num_beams=5, fov_rad=math.radians(90.0))
        angles = scanner.beam_angles()
        assert angles[0] == pytest.approx(-math.radians(45.0))
        assert angles[-1] == pytest.approx(math.radians(45.0))


# ----------------------------------------------------------------------
# Sensor sampling slots and the dropout model
# ----------------------------------------------------------------------
class TestSensorSlots:
    def _world(self):
        return World(road=Road(width_m=60.0), obstacles=[], state=VehicleState())

    def test_sample_slots_do_not_drift(self):
        # A 20 Hz sensor polled at 50 Hz must still average 20 Hz: the slot
        # anchor advances by whole periods, not to the actual sample time.
        sensor = SimulatedSensor(name="cam", sampling_period_s=0.05)
        world = self._world()
        sample_times = []
        steps = 100  # 2 s at 50 Hz
        for step in range(steps):
            t = step * 0.02
            if sensor.due(t):
                sensor.sample(world, t)
                sample_times.append(round(t, 4))
        # 2 s of 20 Hz = 40 samples (the drifting version delivers ~34).
        assert len(sample_times) == 40
        assert sample_times[:4] == [0.0, 0.06, 0.1, 0.16]

    def test_exact_polling_unchanged(self):
        sensor = SimulatedSensor(name="cam", sampling_period_s=0.04)
        world = self._world()
        assert sensor.due(0.0)
        sensor.sample(world, 0.0)
        assert not sensor.due(0.02)
        assert sensor.due(0.04)

    def test_dropout_holds_stale_reading(self):
        sensor = SimulatedSensor(
            name="cam", sampling_period_s=0.02, dropout_probability=0.999
        )
        world = self._world()
        first = sensor.sample(world, 0.0)
        assert not sensor.last_sample_stale  # first sample always succeeds
        world.state = VehicleState(x_m=5.0)
        second = sensor.sample(world, 0.02)
        assert sensor.last_sample_stale
        assert sensor.dropped_samples == 1
        np.testing.assert_array_equal(first, second)

    def test_dropout_zero_probability_never_stale(self):
        sensor = SimulatedSensor(name="cam", sampling_period_s=0.02)
        world = self._world()
        for step in range(5):
            sensor.sample(world, 0.02 * step)
            assert not sensor.last_sample_stale
        assert sensor.dropped_samples == 0

    def test_dropout_probability_validated(self):
        with pytest.raises(ValueError):
            SimulatedSensor(name="cam", sampling_period_s=0.02, dropout_probability=1.0)

    def test_reset_clears_dropout_state(self):
        sensor = SimulatedSensor(
            name="cam", sampling_period_s=0.02, dropout_probability=0.999
        )
        world = self._world()
        sensor.sample(world, 0.0)
        sensor.sample(world, 0.02)
        sensor.reset()
        assert sensor.dropped_samples == 0
        assert not sensor.last_sample_stale
        assert sensor.latest() is None


# ----------------------------------------------------------------------
# Unified nearest-threat query (bugfix regression)
# ----------------------------------------------------------------------
class TestNearestThreatUnification:
    def test_nearest_obstacle_agrees_with_view(self):
        # A small obstacle slightly behind vs a large obstacle ahead: centre
        # distance and surface distance disagree, and only the ahead one is
        # the safety-relevant threat.  Both queries must name the same one.
        behind = Obstacle(x_m=-3.0, y_m=0.0, radius_m=0.5)
        ahead = Obstacle(x_m=4.0, y_m=0.0, radius_m=3.0)
        world = World(
            road=Road(),
            obstacles=[behind, ahead],
            state=VehicleState(x_m=0.0, y_m=0.0, heading_rad=0.0),
        )
        view = world.nearest_obstacle_view()
        assert view is not None and view[2] is ahead
        assert world.nearest_obstacle() is ahead

    def test_nearest_obstacle_falls_back_to_behind(self):
        behind = Obstacle(x_m=-2.0, y_m=0.0)
        world = World(road=Road(), obstacles=[behind], state=VehicleState())
        assert world.nearest_obstacle() is behind

    def test_nearest_obstacle_none_when_empty(self):
        world = World(road=Road(), obstacles=[], state=VehicleState())
        assert world.nearest_obstacle() is None


# ----------------------------------------------------------------------
# Obstacle motion
# ----------------------------------------------------------------------
class TestObstacleMotion:
    def test_constant_velocity(self):
        obstacle = Obstacle(x_m=10.0, y_m=0.0, motion=ConstantVelocity(-2.0, 1.0))
        moved = obstacle.at_time(2.0)
        assert moved.x_m == pytest.approx(6.0)
        assert moved.y_m == pytest.approx(2.0)
        assert obstacle.at_time(0.0).position == (10.0, 0.0)

    def test_static_obstacle_at_time_is_self(self):
        obstacle = Obstacle(x_m=10.0, y_m=0.0)
        assert obstacle.at_time(5.0) is obstacle

    def test_waypoint_loop_oscillates(self):
        # Loop origin -> (10, 4) -> origin: perimeter 8, so at speed 2 the
        # full cycle takes 4 s.
        obstacle = Obstacle(
            x_m=10.0, y_m=0.0, motion=WaypointLoop(waypoints=((10.0, 4.0),), speed_mps=2.0)
        )
        assert obstacle.at_time(1.0).y_m == pytest.approx(2.0)
        assert obstacle.at_time(2.0).y_m == pytest.approx(4.0)
        assert obstacle.at_time(3.0).y_m == pytest.approx(2.0)
        assert obstacle.at_time(4.0).y_m == pytest.approx(0.0)
        assert obstacle.at_time(5.0).y_m == pytest.approx(2.0)

    def test_waypoint_loop_validation(self):
        with pytest.raises(ValueError):
            WaypointLoop(waypoints=(), speed_mps=1.0)
        with pytest.raises(ValueError):
            WaypointLoop(waypoints=((1.0, 1.0),), speed_mps=0.0)

    def test_world_step_moves_obstacles_and_reset_restores(self):
        obstacle = Obstacle(x_m=30.0, y_m=0.0, motion=ConstantVelocity(0.0, 1.0))
        world = World(road=Road(width_m=20.0), obstacles=[obstacle], state=VehicleState())
        from repro.dynamics.state import ControlAction

        for _ in range(10):
            world.step(ControlAction(), 0.1)
        assert world.obstacles[0].y_m == pytest.approx(1.0)
        world.reset()
        assert world.obstacles[0].y_m == pytest.approx(0.0)

    def test_collision_uses_moved_position(self):
        # The obstacle starts clear of the ego but crosses its position.
        obstacle = Obstacle(
            x_m=0.0, y_m=6.0, radius_m=1.0, motion=ConstantVelocity(0.0, -2.0)
        )
        world = World(
            road=Road(width_m=20.0),
            obstacles=[obstacle],
            state=VehicleState(x_m=0.0, y_m=0.0, speed_mps=0.0),
        )
        from repro.dynamics.state import ControlAction

        assert not world.status().collided
        collided_at = None
        for _ in range(40):
            world.step(ControlAction(), 0.1)
            if world.status().collided:
                collided_at = world.time_s
                break
        assert collided_at is not None
        # y(t) = 6 - 2t reaches the collision envelope (radius + vehicle
        # collision radius) shortly before t = 3.
        envelope = world.obstacles[0].radius_m + world.vehicle_params.collision_radius_m
        assert world.obstacles[0].y_m <= envelope + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        radius=st.floats(30.0, 70.0),
        sweep=st.floats(math.radians(15.0), math.radians(60.0)),
        speed=st.floats(0.5, 3.0),
        time=st.floats(0.0, 20.0),
    )
    def test_moving_obstacle_position_continuous_at_segment_joints(
        self, radius, sweep, speed, time
    ):
        # An obstacle looping laterally across a segment joint must move
        # continuously (no jumps as its path crosses the joint), so the
        # collision check cannot tunnel through a discontinuity.
        road = Road(
            width_m=12.0,
            segments=(StraightSegment(20.0), ArcSegment(radius_m=radius, sweep_rad=sweep)),
        )
        joint_s = 20.0
        x0, y0 = road.from_frenet(joint_s, 2.0)
        far = road.from_frenet(joint_s, -2.0)
        obstacle = Obstacle(
            x_m=x0, y_m=y0, motion=WaypointLoop(waypoints=(far,), speed_mps=speed)
        )
        eps = 0.01
        a = obstacle.at_time(time)
        b = obstacle.at_time(time + eps)
        step = math.hypot(b.x_m - a.x_m, b.y_m - a.y_m)
        assert step <= speed * eps + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(
        radius=st.floats(30.0, 70.0),
        sweep=st.floats(math.radians(20.0), math.radians(60.0)),
        speed=st.floats(0.8, 2.5),
    )
    def test_moving_obstacle_collision_detected_at_segment_joint(
        self, radius, sweep, speed
    ):
        # Ego parked on the centreline at a segment joint; an obstacle
        # oscillates across the corridor through that exact point.  Stepping
        # the world must produce a collision the moment the moved disc
        # overlaps the ego envelope — evaluated against the moved position.
        from repro.dynamics.state import ControlAction
        from repro.sim.collision import first_collision

        road = Road(
            width_m=12.0,
            segments=(StraightSegment(20.0), ArcSegment(radius_m=radius, sweep_rad=sweep)),
        )
        joint_s = 20.0
        start = road.from_frenet(joint_s, 4.0)
        far = road.from_frenet(joint_s, -4.0)
        obstacle = Obstacle(
            x_m=start[0],
            y_m=start[1],
            radius_m=1.0,
            motion=WaypointLoop(waypoints=(far,), speed_mps=speed),
        )
        ego_x, ego_y = road.from_frenet(joint_s, 0.0)
        world = World(
            road=road,
            obstacles=[obstacle],
            state=VehicleState(x_m=ego_x, y_m=ego_y, speed_mps=0.0),
        )
        envelope = obstacle.radius_m + world.vehicle_params.collision_radius_m
        saw_collision = False
        for _ in range(400):
            world.step(ControlAction(), 0.05)
            moved = world.obstacles[0]
            expected = moved.distance_to(ego_x, ego_y) <= envelope
            actual = (
                first_collision(
                    world.state, world.obstacles, world.vehicle_params.collision_radius_m
                )
                is not None
            )
            assert actual == expected
            saw_collision = saw_collision or actual
        assert saw_collision  # the loop crosses the ego point every cycle


# ----------------------------------------------------------------------
# Scenario configs and families
# ----------------------------------------------------------------------
class TestScenarioFamilies:
    def test_new_families_registered(self):
        for name in ("curved-road", "s-curve-narrow", "moving-traffic", "sensor-dropout"):
            assert name in DEFAULT_SUITE

    def test_config_validates_motion_mode(self):
        with pytest.raises(ValueError):
            ScenarioConfig(obstacle_motion="teleport")
        with pytest.raises(ValueError):
            ScenarioConfig(obstacle_motion="lateral-loop", obstacle_speed_mps=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(sensor_dropout_probability=1.0)

    def test_every_family_builds_a_world(self):
        for family in DEFAULT_SUITE:
            world = build_world(family.build(seed=3))
            assert world.road.length_m > 0
            assert len(world.obstacles) == family.base.num_obstacles

    def test_moving_traffic_obstacles_carry_motion(self):
        world = build_world(DEFAULT_SUITE.build("moving-traffic", seed=1))
        assert world.obstacles
        assert all(o.motion is not None for o in world.obstacles)

    def test_curved_family_obstacles_lie_on_road(self):
        world = build_world(DEFAULT_SUITE.build("curved-road", seed=2))
        for obstacle in world.obstacles:
            assert world.road.contains(obstacle.x_m, obstacle.y_m)

    def test_attach_motion_static_is_identity(self):
        road = Road()
        obstacles = [Obstacle(80.0, 1.0)]
        assert attach_motion(obstacles, road, "static", 0.0) == obstacles

    def test_attach_motion_oncoming_moves_against_route(self):
        road = Road()
        [moving] = attach_motion([Obstacle(80.0, 1.0)], road, "oncoming", 2.0)
        later = moving.at_time(1.0)
        assert later.x_m == pytest.approx(78.0)

    def test_build_world_deterministic_with_motion(self):
        config = DEFAULT_SUITE.build("moving-traffic", seed=9)
        assert build_world(config).obstacles == build_world(config).obstacles

    def test_curved_episode_completes_with_heuristic_controller(self):
        config = DEFAULT_SUITE.build("curved-road", seed=4)
        world = build_world(config)
        runner = EpisodeRunner(
            world=world,
            controller=ObstacleAvoidanceController(
                target_speed_mps=config.target_speed_mps
            ),
            max_steps=1500,
        )
        result = runner.run()
        assert result.completed
        assert not result.off_road

    def test_sensor_dropout_exercises_stale_fallback(self):
        config = SEOConfig(
            scenario=DEFAULT_SUITE.build("sensor-dropout", seed=0),
            optimization="none",
            filtered=True,
            target_speed_mps=7.0,
            max_steps=150,
            seed=0,
        )
        report = SEOFramework(config).run_episode(0)
        assert report.sensor_dropouts > 0

    def test_zero_dropout_reports_none(self):
        config = SEOConfig(
            scenario=ScenarioConfig(num_obstacles=2, seed=0),
            optimization="none",
            filtered=True,
            max_steps=100,
            seed=0,
        )
        report = SEOFramework(config).run_episode(0)
        assert report.sensor_dropouts == 0
