"""Tests for the perception models (detector and VAE encoder)."""


import numpy as np
import pytest

from repro.perception.detections import Detection, DetectionSet
from repro.perception.detector import DetectorModel
from repro.perception.encoder import VAEStateEncoder, collect_scan_dataset
from repro.sim.observation import RangeScanner
from repro.sim.obstacles import Obstacle
from repro.sim.road import Road
from repro.sim.scenario import ScenarioConfig
from repro.sim.world import World
from repro.dynamics.state import VehicleState


def _world(obstacles):
    return World(
        road=Road(width_m=40.0),
        obstacles=obstacles,
        state=VehicleState(speed_mps=5.0),
    )


class TestDetectionContainers:
    def test_detection_validation(self):
        with pytest.raises(ValueError):
            Detection(distance_m=-1.0, bearing_rad=0.0)
        with pytest.raises(ValueError):
            Detection(distance_m=1.0, bearing_rad=0.0, confidence=2.0)

    def test_nearest_returns_closest(self):
        detections = DetectionSet(
            detections=[
                Detection(distance_m=10.0, bearing_rad=0.1),
                Detection(distance_m=4.0, bearing_rad=-0.2),
            ]
        )
        assert detections.nearest().distance_m == 4.0

    def test_nearest_empty_is_none(self):
        assert DetectionSet().nearest() is None

    def test_aged_marks_stale_and_keeps_content(self):
        original = DetectionSet(
            detections=[Detection(distance_m=5.0, bearing_rad=0.0)], source="det"
        )
        aged = original.aged()
        assert aged.stale and not original.stale
        assert len(aged) == 1


class TestDetectorModel:
    def test_detects_single_obstacle_ahead(self):
        detector = DetectorModel(name="det", range_noise_std_m=0.0, bearing_noise_std_rad=0.0)
        world = _world([Obstacle(x_m=12.0, y_m=0.0, radius_m=1.0)])
        result = detector.infer(world)
        assert len(result) >= 1
        nearest = result.nearest()
        assert nearest.distance_m == pytest.approx(11.0, abs=0.5)
        assert abs(nearest.bearing_rad) < 0.2

    def test_detects_two_separated_obstacles(self):
        detector = DetectorModel(name="det", range_noise_std_m=0.0, bearing_noise_std_rad=0.0)
        world = _world(
            [
                Obstacle(x_m=12.0, y_m=-5.0, radius_m=1.0),
                Obstacle(x_m=12.0, y_m=5.0, radius_m=1.0),
            ]
        )
        result = detector.infer(world)
        assert len(result) == 2
        bearings = sorted(det.bearing_rad for det in result.detections)
        assert bearings[0] < 0 < bearings[1]

    def test_empty_world_yields_no_detections(self):
        detector = DetectorModel(name="det")
        assert len(detector.infer(_world([]))) == 0

    def test_obstacle_behind_is_not_detected(self):
        detector = DetectorModel(name="det")
        world = _world([Obstacle(x_m=-10.0, y_m=0.0, radius_m=1.0)])
        assert len(detector.infer(world)) == 0

    def test_miss_rate_one_would_be_invalid(self):
        with pytest.raises(ValueError):
            DetectorModel(name="det", miss_rate=1.0)

    def test_high_miss_rate_drops_detections(self):
        detector = DetectorModel(name="det", miss_rate=0.99, seed=1)
        world = _world([Obstacle(x_m=12.0, y_m=0.0, radius_m=1.0)])
        dropped = sum(len(detector.infer(world)) == 0 for _ in range(20))
        assert dropped >= 15

    def test_rate_and_energy_properties(self):
        detector = DetectorModel(name="det", period_s=0.02)
        assert detector.rate_hz == pytest.approx(50.0)
        assert detector.local_inference_energy_j() == pytest.approx(0.017 * 7.0)

    def test_describe_mentions_rate(self):
        assert "50 Hz" in DetectorModel(name="det", period_s=0.02).describe()

    def test_reset_restores_noise_sequence(self):
        detector = DetectorModel(name="det", range_noise_std_m=0.3, seed=5)
        world = _world([Obstacle(x_m=12.0, y_m=0.0, radius_m=1.0)])
        first = detector.infer(world).nearest().distance_m
        detector.reset()
        second = detector.infer(world).nearest().distance_m
        assert first == pytest.approx(second)


class TestVAEStateEncoder:
    def test_collect_scan_dataset_shape(self):
        scanner = RangeScanner(num_beams=16)
        data = collect_scan_dataset(
            ScenarioConfig(num_obstacles=2, seed=0),
            scanner,
            num_worlds=2,
            samples_per_world=5,
            seed=0,
        )
        assert data.shape == (10, 16)
        assert np.all((data >= 0.0) & (data <= 1.0))

    def test_encode_returns_latent_vector(self):
        scanner = RangeScanner(num_beams=16)
        encoder = VAEStateEncoder(scanner=scanner, latent_dim=5)
        world = _world([Obstacle(x_m=15.0, y_m=0.0)])
        features = encoder.encode(world)
        assert features.shape == (5,)

    def test_fit_marks_trained(self):
        scanner = RangeScanner(num_beams=8)
        encoder = VAEStateEncoder(scanner=scanner, latent_dim=3)
        data = np.random.default_rng(0).uniform(size=(32, 8))
        assert not encoder.trained
        encoder.fit(data, epochs=2, batch_size=16)
        assert encoder.trained

    def test_per_invocation_energy(self):
        encoder = VAEStateEncoder()
        assert encoder.per_invocation_energy_j() == pytest.approx(0.004 * 4.0)

    def test_collect_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            collect_scan_dataset(
                ScenarioConfig(num_obstacles=0, seed=0), RangeScanner(), num_worlds=0
            )
