"""Tests for the shared-pool sweep engine (`repro.runtime.sweep`)."""

import dataclasses

import pytest

from repro.experiments.common import ExperimentSettings, run_batch
from repro.runtime.executor import (
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    resolve_jobs,
)
from repro.runtime.sweep import SweepJob, SweepRunner, sweep_jobs


def _variants(fast_seo_config):
    """A small multi-config batch mixing optimization methods and controls."""
    return {
        "offload": fast_seo_config,
        "gating": dataclasses.replace(fast_seo_config, optimization="model_gating"),
        "unfiltered": dataclasses.replace(fast_seo_config, filtered=False),
    }


class TestSweepJob:
    def test_rejects_nonpositive_episodes(self, fast_seo_config):
        with pytest.raises(ValueError):
            SweepJob(label="x", config=fast_seo_config, episodes=0)

    def test_sweep_jobs_helper_preserves_keys(self, fast_seo_config):
        jobs = sweep_jobs(_variants(fast_seo_config), episodes=2)
        assert [job.label for job in jobs] == ["offload", "gating", "unfiltered"]
        assert all(job.episodes == 2 for job in jobs)


class TestSweepRunnerSerial:
    def test_matches_serial_per_config_path(self, fast_seo_config):
        configs = _variants(fast_seo_config)
        with SweepRunner(jobs=1) as runner:
            batch = runner.run(sweep_jobs(configs, episodes=2))
        for key, config in configs.items():
            assert batch[key] == SerialExecutor().run(config, 2)

    def test_serial_runner_never_builds_a_pool(self, fast_seo_config):
        runner = SweepRunner(jobs=1)
        runner.run(sweep_jobs(_variants(fast_seo_config), episodes=1))
        assert runner.pools_created == 0
        runner.close()

    def test_empty_batch(self):
        with SweepRunner(jobs=1) as runner:
            assert runner.run([]) == {}

    def test_duplicate_labels_rejected(self, fast_seo_config):
        jobs = [
            SweepJob(label="same", config=fast_seo_config, episodes=1),
            SweepJob(label="same", config=fast_seo_config, episodes=1),
        ]
        with SweepRunner(jobs=1) as runner, pytest.raises(ValueError):
            runner.run(jobs)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=2, backend="rayon")


class TestSweepRunnerParallel:
    def test_bit_identical_to_serial_per_config(self, fast_seo_config):
        """Acceptance: a multi-config parallel sweep == the serial path."""
        configs = _variants(fast_seo_config)
        with SweepRunner(jobs=2) as runner:
            batch = runner.run(sweep_jobs(configs, episodes=3))
        for key, config in configs.items():
            expected = SerialExecutor().run(config, 3)
            assert [report.episode for report in batch[key]] == [0, 1, 2]
            assert batch[key] == expected

    def test_single_pool_across_batches(self, fast_seo_config):
        """The shared pool is created once and reused by later batches."""
        with SweepRunner(jobs=2) as runner:
            runner.run(sweep_jobs({"a": fast_seo_config}, episodes=2))
            runner.run(
                sweep_jobs(
                    {"b": dataclasses.replace(fast_seo_config, seed=9)}, episodes=2
                )
            )
            assert runner.pools_created == 1

    def test_thread_backend_bit_identical(self, fast_seo_config):
        configs = _variants(fast_seo_config)
        with SweepRunner(jobs=2, backend="thread") as runner:
            batch = runner.run(sweep_jobs(configs, episodes=2))
        for key, config in configs.items():
            assert batch[key] == SerialExecutor().run(config, 2)

    def test_run_one_convenience(self, fast_seo_config):
        with SweepRunner(jobs=2) as runner:
            reports = runner.run_one(fast_seo_config, 2)
        assert reports == SerialExecutor().run(fast_seo_config, 2)

    def test_auto_jobs_resolves_to_cpu_count(self):
        assert SweepRunner(jobs=0).workers == resolve_jobs(0)
        assert SweepRunner(jobs=0).workers >= 1

    def test_run_after_close_raises(self, fast_seo_config):
        runner = SweepRunner(jobs=2)
        runner.close()
        with pytest.raises(RuntimeError):
            runner.run(sweep_jobs({"a": fast_seo_config}, episodes=1))

    def test_failing_episode_fails_fast(self, fast_seo_config, monkeypatch):
        """A raising worker task surfaces immediately and tears the pool down."""
        from repro.runtime import sweep as sweep_module

        def exploding_task(config, episode):
            raise RuntimeError("boom")

        monkeypatch.setattr(
            sweep_module, "_run_episode_task_threaded", exploding_task
        )
        runner = SweepRunner(jobs=2, backend="thread")
        with pytest.raises(RuntimeError, match="boom"):
            runner.run(sweep_jobs({"a": fast_seo_config}, episodes=3))
        assert runner._pool is None  # cancelled and shut down, not drained
        runner.close()


class TestExecutorBackends:
    def test_thread_executor_bit_identical(self, fast_seo_config):
        serial = SerialExecutor().run(fast_seo_config, 3)
        assert ThreadExecutor(jobs=2).run(fast_seo_config, 3) == serial

    def test_make_executor_backends(self):
        assert isinstance(make_executor(1, backend="thread"), SerialExecutor)
        assert isinstance(make_executor(4, backend="process"), ParallelExecutor)
        assert isinstance(make_executor(4, backend="thread"), ThreadExecutor)
        with pytest.raises(ValueError):
            make_executor(4, backend="fibers")


class TestExperimentPlumbing:
    def test_run_batch_uses_shared_runner(self, fast_seo_config):
        """Drivers funnel their batches into settings.runner when provided."""
        seen = []

        class RecordingRunner(SweepRunner):
            def run(self, jobs, experiment=None):
                seen.append([job.label for job in jobs])
                return super().run(jobs, experiment=experiment)

        runner = RecordingRunner(jobs=1)
        settings = ExperimentSettings(episodes=1, max_steps=200, runner=runner)
        batch = run_batch({"only": fast_seo_config}, settings)
        assert seen == [["only"]]
        assert set(batch) == {"only"}

    def test_settings_accept_auto_jobs_and_backends(self):
        assert ExperimentSettings(jobs=0).jobs == 0
        assert ExperimentSettings(backend="thread").backend == "thread"
        with pytest.raises(ValueError):
            ExperimentSettings(jobs=-1)
        with pytest.raises(ValueError):
            ExperimentSettings(backend="fibers")


class TestDerivedKeys:
    def test_job_key_is_derived_content_hash(self, fast_seo_config):
        """Job identity is the content of (config, episode range), not the label."""
        job = SweepJob(label="anything", config=fast_seo_config, episodes=2)
        relabeled = SweepJob(label="else", config=fast_seo_config, episodes=2)
        assert job.key == relabeled.key
        assert len(job.key) == 64 and int(job.key, 16) >= 0

    def test_key_changes_with_any_nested_field(self, fast_seo_config):
        base = SweepJob(label="x", config=fast_seo_config, episodes=2)
        reseeded = dataclasses.replace(
            fast_seo_config, scenario=dataclasses.replace(fast_seo_config.scenario, seed=99)
        )
        assert SweepJob(label="x", config=reseeded, episodes=2).key != base.key
        assert SweepJob(label="x", config=fast_seo_config, episodes=3).key != base.key

    def test_identical_units_execute_once(self, fast_seo_config):
        """Two labels naming the same content share one execution."""
        jobs = [
            SweepJob(label="left", config=fast_seo_config, episodes=1),
            SweepJob(label="right", config=fast_seo_config, episodes=1),
        ]
        with SweepRunner(jobs=1) as runner:
            batch = runner.run(jobs)
        assert runner.units_executed == 1
        assert batch["left"] == batch["right"]


class TestPoolConstructionCounter:
    def test_reset_returns_previous_value(self, fast_seo_config):
        from repro.runtime import sweep as sweep_module

        with SweepRunner(jobs=2, backend="thread") as runner:
            runner.run(sweep_jobs({"a": fast_seo_config}, episodes=2))
        before = sweep_module.pool_constructions()
        assert before >= 1
        assert sweep_module.reset_pool_constructions() == before
        assert sweep_module.pool_constructions() == 0

    def test_increments_are_thread_safe(self):
        import threading

        from repro.runtime import sweep as sweep_module

        sweep_module.reset_pool_constructions()
        increments = 200
        threads = [
            threading.Thread(
                target=lambda: [
                    sweep_module._count_pool_construction() for _ in range(increments)
                ]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sweep_module.pool_constructions() == 8 * increments
        sweep_module.reset_pool_constructions()
