"""Tests for the array-contracts checker (REPRO501–505).

Fixture tests pin (line, code) pairs on purpose-built sources; mutation
tests break the *real* tree in memory and prove each code is live; the
span-suppression tests cover the pragma-anywhere-in-statement rule the
checker leans on for its two sanctioned exceptions in ``runtime/batch.py``.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro import cli
from repro.lint import CHECKERS, shapes
from repro.lint.arrays import dim_from_spec, format_shape, is_fresh, promote
from repro.lint.framework import (
    SourceFile,
    Violation,
    is_suppressed,
    load_source_file,
    package_relative,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def load_fixture(name: str, relpath: str) -> SourceFile:
    return load_source_file(FIXTURES / name, relpath=relpath)


def codes_by_line(violations) -> list[tuple[int, str]]:
    return sorted((v.line, v.code) for v in violations)


def mutate(path: Path, relpath: str, old: str, new: str) -> list[Violation]:
    """Apply a one-shot textual mutation and run the checker on the result."""
    source = path.read_text()
    clean = load_source_file(path, relpath=relpath)
    assert shapes.check_shapes([clean]) == [], "real file must start clean"
    mutated = source.replace(old, new, 1)
    assert mutated != source, f"mutation pattern not found in {relpath}"
    return shapes.check_shapes(
        [SourceFile(path, relpath, mutated, ast.parse(mutated))]
    )


def in_scope_sources() -> list[SourceFile]:
    files = []
    for path in sorted(SRC.rglob("*.py")):
        rel = package_relative(path)
        if shapes.in_scope(rel):
            files.append(load_source_file(path, relpath=rel))
    return files


# ----------------------------------------------------------------------
# Engine primitives
# ----------------------------------------------------------------------

def test_dim_spec_and_formatting_helpers():
    assert dim_from_spec(4) == 4
    assert dim_from_spec("N") == "N"
    assert dim_from_spec((2, "G")) == "2*G"
    assert format_shape(("N", 1)) == "(N, 1)"
    assert format_shape(("N",)) == "(N,)"
    assert format_shape(None) == "(?)"


def test_fresh_dims_are_anonymous_and_lenient():
    assert is_fresh("?1")
    assert not is_fresh("N")
    assert not is_fresh(3)


def test_dtype_promotion_lattice():
    assert promote("bool", "float64") == "float64"
    assert promote("int64", "bool") == "int64"
    assert promote("float64", None) is None
    assert promote(None, None) is None


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

def test_shapes_clean_fixture_passes():
    assert shapes.check_shapes([load_fixture("shapes_ok.py", "core/shapes_ok.py")]) == []


def test_shapes_bad_fixture_fires_every_code():
    violations = shapes.check_shapes(
        [load_fixture("shapes_bad.py", "core/shapes_bad.py")]
    )
    assert codes_by_line(violations) == [
        (18, "REPRO501"),
        (24, "REPRO502"),
        (27, "REPRO503"),
        (33, "REPRO503"),
        (40, "REPRO505"),
        (51, "REPRO504"),
    ]
    by_code = {v.code: v.message for v in violations}
    assert "(N, K) with (N,)" in by_code["REPRO501"]
    assert "np.float32" in by_code["REPRO502"]
    assert "inferred shape (N, 1)" in by_code["REPRO503"]
    assert "1-element view" in by_code["REPRO504"]
    assert "unsized RNG draw" in by_code["REPRO505"]


def test_shapes_scope_is_the_kernel_layer():
    assert shapes.in_scope("core/lookup.py")
    assert shapes.in_scope("control/pure_pursuit.py")
    assert shapes.in_scope("perception/detector.py")
    assert shapes.in_scope("dynamics/bicycle.py")
    assert shapes.in_scope("sim/road.py")
    assert shapes.in_scope("sim/world.py")
    assert shapes.in_scope("runtime/batch.py")
    assert not shapes.in_scope("runtime/engine.py")
    assert not shapes.in_scope("sim/scenarios.py")
    assert not shapes.in_scope("cli.py")


def test_out_of_scope_fixture_is_ignored_by_run_lint(tmp_path):
    target = tmp_path / "repro" / "analysis"
    target.mkdir(parents=True)
    bad = (FIXTURES / "shapes_bad.py").read_text()
    (target / "shapes_bad.py").write_text(bad)
    violations = run_lint([tmp_path], CHECKERS, select=["array-contracts"])
    assert violations == []


# ----------------------------------------------------------------------
# Real-tree mutations: every code must be live against the actual kernels
# ----------------------------------------------------------------------

def test_mutation_real_world_broadcast_fires_501():
    """Dropping the ``[:, None]`` expansion must surface the (N, K)/(N,) clash."""
    violations = mutate(
        SRC / "sim" / "world.py",
        "sim/world.py",
        "dx = obs_x - xs[:, None]",
        "dx = obs_x - xs",
    )
    assert [v.code for v in violations] == ["REPRO501"]
    assert "(N, K) with (N,)" in violations[0].message
    assert "nearest_obstacle_view_batch" in violations[0].message


def test_mutation_real_heuristic_dtype_fires_502():
    violations = mutate(
        SRC / "control" / "heuristic.py",
        "control/heuristic.py",
        "dtype=float)",
        "dtype=np.float32)",
    )
    assert [v.code for v in violations] == ["REPRO502"]
    assert "np.float32" in violations[0].message


def test_mutation_real_safety_return_shape_fires_503():
    violations = mutate(
        SRC / "core" / "safety.py",
        "core/safety.py",
        "return np.where(present, distances - required, distances)",
        "return np.where(present, distances - required, distances)[:, None]",
    )
    assert [v.code for v in violations] == ["REPRO503"]
    assert "inferred shape (N, 1) contradicts declared (N,)" in violations[0].message


def test_mutation_real_safety_stripped_contract_fires_503():
    decorator = (
        "    @kernel_contract(\n"
        '        distances_m="(N,) float64",\n'
        '        bearings_rad="(N,) float64",\n'
        '        speeds_mps="(N,) float64",\n'
        '        returns="(N,) float64",\n'
        "    )\n"
        "    def evaluate_batch(\n"
    )
    violations = mutate(
        SRC / "core" / "safety.py",
        "core/safety.py",
        decorator,
        "    def evaluate_batch(\n",
    )
    assert [v.code for v in violations] == ["REPRO503"]
    assert "lacks a @kernel_contract declaration" in violations[0].message


def test_mutation_real_lookup_facade_fires_504():
    violations = mutate(
        SRC / "core" / "lookup.py",
        "core/lookup.py",
        "np.array([inputs.distance_m]",
        "np.array([inputs.distance_m, 0.0]",
    )
    assert [v.code for v in violations] == ["REPRO504"]
    assert "facade 'query'" in violations[0].message


def test_mutation_real_detector_rng_fires_505():
    violations = mutate(
        SRC / "perception" / "detector.py",
        "perception/detector.py",
        "keep[lo:hi] = rng.random(groups) >= self.miss_rate",
        "keep[lo:hi] = rng.random() >= self.miss_rate",
    )
    assert [v.code for v in violations] == ["REPRO505"]
    assert ".random()" in violations[0].message


# ----------------------------------------------------------------------
# Real tree + pragma-span suppression (the run_batch exceptions)
# ----------------------------------------------------------------------

def test_real_tree_presuppression_findings_are_exactly_the_pragmad_pair():
    """Pre-suppression the checker flags only the two sanctioned batch.py sites."""
    violations = shapes.check_shapes(in_scope_sources())
    flagged = sorted((Path(v.path).name, v.code) for v in violations)
    assert flagged == [("batch.py", "REPRO503"), ("batch.py", "REPRO505")]
    for violation in violations:
        assert violation.path.endswith("runtime/batch.py")


def test_real_tree_is_clean_after_span_suppression():
    assert run_lint([SRC], CHECKERS, select=["array-contracts"]) == []


def test_span_suppression_scans_every_line_of_the_statement():
    lines = [
        "@kernel_contract(",
        '    xs="(N,) float64",  # repro-lint: ignore[REPRO503]',
        ")",
        "def f():",
        "    pass",
    ]
    spanning = Violation(
        path="x.py", line=1, end_line=3, code="REPRO503", message="m"
    )
    assert is_suppressed(spanning, lines)
    wrong_code = Violation(
        path="x.py", line=1, end_line=3, code="REPRO501", message="m"
    )
    assert not is_suppressed(wrong_code, lines)


def test_span_suppression_does_not_leak_past_the_statement():
    """A pragma inside the def *body* must not silence a def-level finding."""
    lines = [
        "def f():",
        "    return 1  # repro-lint: ignore[REPRO503]",
    ]
    def_level = Violation(
        path="x.py", line=1, end_line=1, code="REPRO503", message="m"
    )
    assert not is_suppressed(def_level, lines)


# ----------------------------------------------------------------------
# CLI path arguments
# ----------------------------------------------------------------------

def test_cli_lint_accepts_explicit_file_and_directory_args():
    assert cli.run(["lint", str(SRC / "core" / "lookup.py")]) == ""
    assert cli.run(["lint", str(SRC / "core"), str(SRC / "sim")]) == ""


def test_cli_lint_reports_violations_in_explicit_path(tmp_path, capsys):
    scoped = tmp_path / "repro" / "core"
    scoped.mkdir(parents=True)
    (scoped / "shapes_bad.py").write_text((FIXTURES / "shapes_bad.py").read_text())
    with pytest.raises(SystemExit) as excinfo:
        cli.run(["lint", str(tmp_path), "--select", "array-contracts"])
    assert excinfo.value.code == 1
    out = capsys.readouterr().out
    assert "REPRO501" in out
    assert "REPRO505" in out
