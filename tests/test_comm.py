"""Tests for the wireless offloading substrate."""

import numpy as np
import pytest

from repro.comm.channel import RayleighChannel
from repro.comm.link import WirelessLink
from repro.comm.offload import OffloadPlanner
from repro.comm.server import EdgeServer


class TestRayleighChannel:
    def test_sampled_rates_are_positive_and_floored(self):
        channel = RayleighChannel(scale_mbps=20.0, min_rate_mbps=1.0, seed=0)
        rates = [channel.sample_rate_bps() for _ in range(200)]
        assert min(rates) >= 1e6

    def test_mean_matches_rayleigh_expectation(self):
        channel = RayleighChannel(scale_mbps=20.0, seed=1)
        rng = np.random.default_rng(1)
        rates = [channel.sample_rate_bps(rng) for _ in range(4000)]
        assert np.mean(rates) == pytest.approx(channel.mean_rate_bps, rel=0.05)

    def test_reset_restores_sequence(self):
        channel = RayleighChannel(seed=3)
        first = [channel.sample_rate_bps() for _ in range(5)]
        channel.reset()
        second = [channel.sample_rate_bps() for _ in range(5)]
        assert first == second

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RayleighChannel(scale_mbps=0.0)
        with pytest.raises(ValueError):
            RayleighChannel(min_rate_mbps=0.0)


class TestWirelessLink:
    def test_expected_transmission_time_scales_with_payload(self):
        link = WirelessLink()
        small = link.expected_transmission_time_s(10_000)
        large = link.expected_transmission_time_s(100_000)
        assert large > small

    def test_transmission_energy(self):
        link = WirelessLink(tx_power_w=1.3)
        assert link.transmission_energy_j(0.01) == pytest.approx(0.013)

    def test_rejects_invalid_arguments(self):
        link = WirelessLink()
        with pytest.raises(ValueError):
            link.transmission_time_s(0)
        with pytest.raises(ValueError):
            link.transmission_energy_j(-1.0)
        with pytest.raises(ValueError):
            WirelessLink(tx_power_w=-1.0)

    def test_sampled_time_includes_overhead(self):
        link = WirelessLink(overhead_s=0.005)
        rng = np.random.default_rng(0)
        assert link.transmission_time_s(10_000, rng) >= 0.005


class TestEdgeServer:
    def test_expected_service_time(self):
        server = EdgeServer()
        expected = (
            server.profile.latency_s + server.queueing_jitter_s + server.downlink_time_s
        )
        assert server.expected_service_time_s() == pytest.approx(expected)

    def test_sampled_time_at_least_deterministic_part(self):
        server = EdgeServer()
        rng = np.random.default_rng(0)
        assert server.service_time_s(rng) >= server.profile.latency_s

    def test_zero_jitter_is_deterministic(self):
        server = EdgeServer(queueing_jitter_s=0.0)
        assert server.service_time_s() == pytest.approx(
            server.profile.latency_s + server.downlink_time_s
        )


class TestOffloadPlanner:
    def test_estimated_response_periods_at_least_one(self):
        planner = OffloadPlanner(payload_bytes=28_000)
        assert planner.estimated_response_periods(0.02) >= 1

    def test_larger_payload_does_not_reduce_estimate(self):
        small = OffloadPlanner(payload_bytes=10_000)
        large = OffloadPlanner(payload_bytes=200_000)
        assert large.estimated_response_periods(0.02) >= small.estimated_response_periods(0.02)

    def test_sample_consistency(self):
        planner = OffloadPlanner(payload_bytes=28_000)
        rng = np.random.default_rng(0)
        outcome = planner.sample(0.02, rng)
        assert outcome.round_trip_s > outcome.transmission_time_s
        assert outcome.transmission_energy_j == pytest.approx(
            planner.link.transmission_energy_j(outcome.transmission_time_s)
        )
        assert outcome.response_periods >= 1

    def test_sample_is_deterministic_for_seeded_rng(self):
        planner = OffloadPlanner(payload_bytes=28_000)
        first = planner.sample(0.02, np.random.default_rng(5))
        second = planner.sample(0.02, np.random.default_rng(5))
        assert first == second

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            OffloadPlanner(payload_bytes=0)
        planner = OffloadPlanner()
        with pytest.raises(ValueError):
            planner.sample(0.0)
        with pytest.raises(ValueError):
            planner.estimated_response_periods(-1.0)
