"""Tests for the structure-of-arrays batch engine (bit-exact vs serial).

The serial path is the oracle: every assertion here is exact ``==`` on whole
:class:`EpisodeReport` objects, never approximate.  Any drift between the
lockstep engine and the per-episode loop is a bug by definition.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.contracts import ContractViolationError
from repro.core.framework import SEOConfig, SEOFramework
from repro.core.safety import NO_OBSTACLE_DISTANCE_M, SafetyInputs
from repro.dynamics.state import ControlAction
from repro.runtime.batch import BatchExecutor, run_batch
from repro.runtime.executor import (
    EXECUTOR_BACKENDS,
    SerialExecutor,
    make_executor,
)
from repro.runtime.sweep import SweepJob, SweepRunner
from repro.sim.scenario import DEFAULT_SUITE


@pytest.mark.parametrize("family_name", DEFAULT_SUITE.names())
def test_bit_exact_per_scenario_family(family_name):
    """Batch reports equal serial reports exactly on every registered family.

    Covers the stochastic families too: ``sensor-dropout`` exercises the
    dropout RNG stream and stale-detection ageing, ``moving-traffic`` the
    time-indexed obstacle motion.
    """
    family = DEFAULT_SUITE.get(family_name)
    config = SEOConfig(scenario=family.base, max_steps=200)
    serial = SerialExecutor().run(config, 2)
    batch = BatchExecutor().run(config, 2)
    assert batch == serial


@pytest.mark.parametrize(
    "overrides",
    [
        {"optimization": "none"},
        {"optimization": "model_gating"},
        {"optimization": "sensor_gating"},
        {"filtered": False},
        {"controller": "pure_pursuit"},
        {"safety_aware": False},
        {"use_lookup_table": False, "max_steps": 120},
        {"detector_period_multiples": (1, 2, 4)},
    ],
)
def test_bit_exact_across_modes(fast_seo_config, overrides):
    config = dataclasses.replace(fast_seo_config, **overrides)
    assert BatchExecutor().run(config, 2) == SerialExecutor().run(config, 2)


def test_early_termination_masking():
    """Episodes of one batch ending on different frames stay bit-exact.

    On the default course the four episodes terminate on four different
    frames; the batch engine must freeze each one at its own terminal frame
    (masking) rather than stepping the whole batch to a common horizon.
    """
    config = SEOConfig(max_steps=800)
    serial = SerialExecutor().run(config, 4)
    batch = BatchExecutor().run(config, 4)
    # The scenario must actually exercise masking: distinct end frames, none
    # of them at the horizon.
    assert len({report.steps for report in serial}) > 1
    assert all(report.steps < config.max_steps for report in serial)
    assert batch == serial


def test_masked_episode_keeps_terminal_state():
    """A collided episode's report is unaffected by surviving batchmates."""
    config = SEOConfig(max_steps=800)
    serial = SerialExecutor().run(config, 4)
    ended_first = min(serial, key=lambda report: report.steps)
    alone = run_batch(SEOFramework(config), [ended_first.episode])
    assert alone == [ended_first]


def test_run_range_matches_serial_slice(fast_seo_config):
    serial = SerialExecutor().run_range(fast_seo_config, 2, 5)
    batch = BatchExecutor().run_range(fast_seo_config, 2, 5)
    assert batch == serial
    assert [report.episode for report in batch] == [2, 3, 4]


def test_validation_errors(fast_seo_config):
    with pytest.raises(ValueError):
        BatchExecutor().run(fast_seo_config, 0)
    with pytest.raises(ValueError):
        BatchExecutor().run_range(fast_seo_config, 3, 3)
    with pytest.raises(ValueError):
        BatchExecutor().run_range(fast_seo_config, -1, 2)


def test_framework_memoized_across_calls(fast_seo_config):
    executor = BatchExecutor()
    executor.run(fast_seo_config, 1)
    framework = executor._framework
    executor.run(fast_seo_config, 1)
    assert executor._framework is framework


class TestBackendWiring:
    def test_registered_backend(self):
        assert "batch" in EXECUTOR_BACKENDS

    def test_make_executor(self):
        assert isinstance(make_executor(backend="batch"), BatchExecutor)
        # The batch backend ignores jobs (lockstep, not worker parallelism);
        # the expected advisory warning is asserted by test_explicit_jobs_warns.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert isinstance(make_executor(jobs=8, backend="batch"), BatchExecutor)

    def test_explicit_jobs_warns(self):
        """jobs != 1 with the batch backend is accepted but flagged."""
        with pytest.warns(UserWarning, match="ignores jobs"):
            executor = make_executor(jobs=8, backend="batch")
        assert isinstance(executor, BatchExecutor)

    def test_default_jobs_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_executor(jobs=1, backend="batch")

    def test_sweep_runner_explicit_jobs_warns(self):
        """The CLI routes through SweepRunner, so it must warn there too."""
        with pytest.warns(UserWarning, match="ignores jobs"), SweepRunner(
            jobs=4, backend="batch"
        ):
            pass

    def test_make_executor_rejects_workers(self):
        with pytest.raises(ValueError):
            make_executor(backend="batch", workers=["host:1"])

    def test_sweep_runner_no_pool(self, fast_seo_config):
        """A batch-backend sweep is bit-identical and never builds a pool."""
        jobs = [SweepJob(label="cell", config=fast_seo_config, episodes=3)]
        with SweepRunner(backend="batch") as runner:
            results = runner.run(jobs)
            assert runner.pools_created == 0
        assert results["cell"] == SerialExecutor().run(fast_seo_config, 3)

    def test_framework_run_routes_through_executor(self, fast_seo_config):
        """`SEOFramework.run(jobs=1)` uses the executor API, same reports."""
        framework = SEOFramework(fast_seo_config)
        expected = [framework.run_episode(episode) for episode in range(2)]
        assert framework.run(2) == expected


class TestLookupQueryBatch:
    def test_elementwise_equals_scalar_query(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        table = framework.lookup_table
        assert table is not None
        rng = np.random.default_rng(7)
        count = 64
        distances = np.concatenate(
            [
                rng.uniform(0.0, 45.0, count - 2),
                [NO_OBSTACLE_DISTANCE_M, table.grid.max_distance_m],
            ]
        )
        bearings = rng.uniform(-np.pi, np.pi, count)
        speeds = rng.uniform(0.0, 15.0, count)
        steerings = rng.uniform(-1.5, 1.5, count)
        throttles = rng.uniform(-1.5, 1.5, count)

        before = table.queries
        batched = table.query_batch(distances, bearings, speeds, steerings, throttles)
        assert table.queries == before + count

        for index in range(count):
            inputs = SafetyInputs(
                distance_m=float(distances[index]),
                bearing_rad=float(bearings[index]),
                speed_mps=float(speeds[index]),
            )
            control = ControlAction(
                steering=float(steerings[index]), throttle=float(throttles[index])
            )
            assert batched[index] == table.query(inputs, control)

    def test_rejects_mismatched_shapes(self, fast_seo_config):
        table = SEOFramework(fast_seo_config).lookup_table
        # The kernel raises ValueError itself; with runtime contracts on,
        # the declared (N,) specs reject the call first.
        with pytest.raises((ValueError, ContractViolationError)):
            table.query_batch(
                np.zeros(3), np.zeros(2), np.zeros(3), np.zeros(3), np.zeros(3)
            )
