"""Tests for the experiment command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, run


class TestParser:
    def test_known_experiments_are_registered(self):
        for name in ("fig1", "fig5", "fig6", "table1", "table2", "table3"):
            assert name in EXPERIMENTS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.experiment == "fig5"
        assert args.episodes == 10
        assert args.seed == 0
        assert args.jobs == 1
        assert args.backend == "process"
        assert args.lookup_cache is None

    def test_every_subcommand_accepts_jobs(self):
        parser = build_parser()
        for name in list(EXPERIMENTS) + ["all", "suite"]:
            args = parser.parse_args([name, "--jobs", "4", "--backend", "thread"])
            assert args.jobs == 4
            assert args.backend == "thread"

    def test_jobs_zero_means_auto(self):
        # Regression: ParallelExecutor documents jobs <= 0 as "use all CPU
        # cores", so the CLI must accept --jobs 0 rather than reject it.
        args = build_parser().parse_args(["fig5", "--jobs", "0"])
        assert args.jobs == 0

    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--jobs", "-1"])

    def test_suite_subcommand_options(self):
        args = build_parser().parse_args(
            ["suite", "--family", "narrow-road", "--optimization", "model_gating"]
        )
        assert args.family == ["narrow-road"]
        assert args.optimization == "model_gating"

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7"])

    def test_distributed_flags_parse(self):
        from repro.runtime.shard import ShardSpec

        args = build_parser().parse_args(
            ["fig5", "--shard", "2/3", "--ledger-dir", "ledger", "--resume"]
        )
        assert args.shard == ShardSpec(index=2, count=3)
        assert str(args.ledger_dir) == "ledger"
        assert args.resume is True

    def test_parser_rejects_malformed_shard_spec(self):
        for bad in ("3", "0/2", "4/3"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["fig5", "--shard", bad])

    def test_merge_subcommand_parses(self):
        args = build_parser().parse_args(["merge", "s1", "s2", "--into", "m"])
        assert args.experiment == "merge"
        assert [str(path) for path in args.shards] == ["s1", "s2"]
        assert str(args.into) == "m"

    def test_socket_backend_flags_parse(self):
        args = build_parser().parse_args(
            ["suite", "--backend", "socket", "--workers", "hostA:7070,hostB:7071"]
        )
        assert args.backend == "socket"
        assert args.workers == "hostA:7070,hostB:7071"

    def test_worker_subcommand_parses(self):
        args = build_parser().parse_args(["worker", "--listen", "0.0.0.0:7070"])
        assert args.experiment == "worker"
        assert args.listen == "0.0.0.0:7070"

    def test_worker_subcommand_requires_listen(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])


class TestRun:
    def test_run_single_experiment(self, capsys):
        output = run(["table3", "--episodes", "1", "--max-steps", "400"])
        assert "Table III" in output
        captured = capsys.readouterr()
        assert "Table III" in captured.out

    def test_run_suite_subcommand(self, capsys):
        output = run(
            [
                "suite",
                "--episodes",
                "1",
                "--max-steps",
                "300",
                "--family",
                "narrow-road",
            ]
        )
        assert "Scenario suite" in output
        assert "narrow-road" in output

    def test_run_with_jobs_matches_serial(self):
        serial = run(["table3", "--episodes", "2", "--max-steps", "400"])
        parallel = run(["table3", "--episodes", "2", "--max-steps", "400", "--jobs", "2"])
        assert parallel == serial

    def test_run_with_thread_backend_matches_serial(self):
        serial = run(["table3", "--episodes", "2", "--max-steps", "400"])
        threaded = run(
            [
                "table3",
                "--episodes", "2",
                "--max-steps", "400",
                "--jobs", "2",
                "--backend", "thread",
            ]
        )
        assert threaded == serial

    def test_suite_with_thread_backend_matches_serial(self):
        """Execution-matrix coverage: `suite` through the thread backend."""
        base = ["suite", "--episodes", "2", "--max-steps", "300",
                "--family", "narrow-road"]
        serial = run(base)
        threaded = run(base + ["--jobs", "2", "--backend", "thread"])
        assert threaded == serial

    def test_suite_with_jobs_zero_matches_serial(self):
        """Execution-matrix coverage: `suite` with --jobs 0 (all CPU cores)."""
        base = ["suite", "--episodes", "2", "--max-steps", "300",
                "--family", "narrow-road"]
        serial = run(base)
        auto = run(base + ["--jobs", "0"])
        assert auto == serial

    def test_all_constructs_at_most_one_pool(self, monkeypatch):
        """Acceptance: one invocation shares one worker pool across drivers.

        EXPERIMENTS is narrowed to two cheap drivers so the test stays fast;
        the plumbing under test (one SweepRunner threaded through every
        driver of the invocation) is exactly the production `all` path.
        """
        from repro import cli
        from repro.runtime import sweep

        monkeypatch.setattr(
            cli,
            "EXPERIMENTS",
            {name: cli.EXPERIMENTS[name] for name in ("table3", "fig1")},
        )
        before = sweep.pool_constructions()
        run(["all", "--episodes", "2", "--max-steps", "300", "--jobs", "2"])
        assert sweep.pool_constructions() - before == 1

    def test_lookup_cache_override_is_scoped_to_invocation(self, tmp_path):
        from repro.runtime.cache import default_cache

        before = default_cache()
        run(
            [
                "table3",
                "--episodes", "1",
                "--max-steps", "300",
                "--lookup-cache", str(tmp_path),
            ]
        )
        assert list(tmp_path.glob("*.npz"))  # tables persisted during the run
        assert default_cache() is before  # but the process-wide cache is restored

    def test_serial_invocation_builds_no_pool(self):
        from repro.runtime import sweep

        before = sweep.pool_constructions()
        run(["table3", "--episodes", "1", "--max-steps", "300"])
        assert sweep.pool_constructions() == before

    def test_run_writes_output_file(self, tmp_path):
        target = tmp_path / "fig1.txt"
        run(
            [
                "fig1",
                "--episodes",
                "1",
                "--max-steps",
                "400",
                "--output",
                str(target),
            ]
        )
        assert "Fig. 1" in target.read_text()
