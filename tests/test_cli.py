"""Tests for the experiment command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, run


class TestParser:
    def test_known_experiments_are_registered(self):
        for name in ("fig1", "fig5", "fig6", "table1", "table2", "table3"):
            assert name in EXPERIMENTS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.experiment == "fig5"
        assert args.episodes == 10
        assert args.seed == 0
        assert args.jobs == 1
        assert args.lookup_cache is None

    def test_every_subcommand_accepts_jobs(self):
        parser = build_parser()
        for name in list(EXPERIMENTS) + ["all", "suite"]:
            args = parser.parse_args([name, "--jobs", "4"])
            assert args.jobs == 4

    def test_suite_subcommand_options(self):
        args = build_parser().parse_args(
            ["suite", "--family", "narrow-road", "--optimization", "model_gating"]
        )
        assert args.family == ["narrow-road"]
        assert args.optimization == "model_gating"

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7"])


class TestRun:
    def test_run_single_experiment(self, capsys):
        output = run(["table3", "--episodes", "1", "--max-steps", "400"])
        assert "Table III" in output
        captured = capsys.readouterr()
        assert "Table III" in captured.out

    def test_run_suite_subcommand(self, capsys):
        output = run(
            [
                "suite",
                "--episodes",
                "1",
                "--max-steps",
                "300",
                "--family",
                "narrow-road",
            ]
        )
        assert "Scenario suite" in output
        assert "narrow-road" in output

    def test_run_with_jobs_matches_serial(self):
        serial = run(["table3", "--episodes", "2", "--max-steps", "400"])
        parallel = run(["table3", "--episodes", "2", "--max-steps", "400", "--jobs", "2"])
        assert parallel == serial

    def test_run_writes_output_file(self, tmp_path):
        target = tmp_path / "fig1.txt"
        run(
            [
                "fig1",
                "--episodes",
                "1",
                "--max-steps",
                "400",
                "--output",
                str(target),
            ]
        )
        assert "Fig. 1" in target.read_text()
