"""Tests for the kinematic bicycle model and the integrators."""

import math

import numpy as np
import pytest

from repro.dynamics.bicycle import KinematicBicycleModel
from repro.dynamics.integrators import euler_step, rk4_step
from repro.dynamics.params import VehicleParams
from repro.dynamics.state import ControlAction, VehicleState


@pytest.fixture
def model() -> KinematicBicycleModel:
    return KinematicBicycleModel(VehicleParams())


class TestIntegrators:
    def test_euler_constant_derivative(self):
        result = euler_step(np.array([0.0, 0.0]), lambda s: np.array([1.0, 2.0]), 0.1)
        assert result == pytest.approx([0.1, 0.2])

    def test_rk4_matches_exact_for_linear_system(self):
        # x' = x has exact solution e^t; RK4 should be accurate to ~1e-8 at t=0.1.
        result = rk4_step(np.array([1.0]), lambda s: s, 0.1)
        assert result[0] == pytest.approx(math.exp(0.1), abs=1e-7)

    def test_euler_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            euler_step(np.zeros(1), lambda s: s, 0.0)

    def test_rk4_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            rk4_step(np.zeros(1), lambda s: s, -0.1)


class TestControlMapping:
    def test_positive_throttle_maps_to_acceleration(self, model):
        _, accel = model.control_to_physical(ControlAction(throttle=1.0))
        assert accel == pytest.approx(model.params.max_accel_mps2)

    def test_negative_throttle_maps_to_braking(self, model):
        _, accel = model.control_to_physical(ControlAction(throttle=-1.0))
        assert accel == pytest.approx(-model.params.max_brake_mps2)

    def test_steering_saturates(self, model):
        steer, _ = model.control_to_physical(ControlAction(steering=5.0))
        assert steer == pytest.approx(model.params.max_steer_rad)


class TestStep:
    def test_straight_line_motion(self, model):
        state = VehicleState(speed_mps=10.0)
        nxt = model.step(state, ControlAction(), 0.1)
        assert nxt.x_m == pytest.approx(1.0, rel=1e-6)
        assert nxt.y_m == pytest.approx(0.0, abs=1e-9)
        assert nxt.heading_rad == pytest.approx(0.0, abs=1e-9)

    def test_throttle_increases_speed(self, model):
        state = VehicleState(speed_mps=5.0)
        nxt = model.step(state, ControlAction(throttle=1.0), 0.5)
        assert nxt.speed_mps > 5.0

    def test_braking_reduces_speed_but_not_below_zero(self, model):
        state = VehicleState(speed_mps=1.0)
        nxt = model.step(state, ControlAction(throttle=-1.0), 1.0)
        assert nxt.speed_mps == 0.0

    def test_speed_respects_ceiling(self, model):
        state = VehicleState(speed_mps=model.params.max_speed_mps)
        nxt = model.step(state, ControlAction(throttle=1.0), 1.0)
        assert nxt.speed_mps <= model.params.max_speed_mps

    def test_left_steer_increases_heading(self, model):
        state = VehicleState(speed_mps=5.0)
        nxt = model.step(state, ControlAction(steering=1.0), 0.2)
        assert nxt.heading_rad > 0.0

    def test_right_steer_decreases_heading(self, model):
        state = VehicleState(speed_mps=5.0)
        nxt = model.step(state, ControlAction(steering=-1.0), 0.2)
        assert nxt.heading_rad < 0.0

    def test_zero_speed_does_not_turn(self, model):
        state = VehicleState(speed_mps=0.0)
        nxt = model.step(state, ControlAction(steering=1.0), 0.2)
        assert nxt.heading_rad == pytest.approx(0.0, abs=1e-9)
        assert nxt.x_m == pytest.approx(0.0, abs=1e-6)

    def test_euler_and_rk4_agree_for_small_steps(self, model):
        state = VehicleState(speed_mps=8.0)
        control = ControlAction(steering=0.3, throttle=0.2)
        rk4 = model.step(state, control, 0.01, method="rk4")
        euler = model.step(state, control, 0.01, method="euler")
        assert rk4.x_m == pytest.approx(euler.x_m, abs=1e-3)
        assert rk4.heading_rad == pytest.approx(euler.heading_rad, abs=1e-3)

    def test_unknown_method_raises(self, model):
        with pytest.raises(ValueError):
            model.step(VehicleState(), ControlAction(), 0.1, method="leapfrog")


class TestRollout:
    def test_rollout_length(self, model):
        trajectory = model.rollout(VehicleState(speed_mps=5.0), ControlAction(), 0.1, 10)
        assert len(trajectory) == 11

    def test_rollout_starts_with_initial_state(self, model):
        start = VehicleState(speed_mps=5.0)
        trajectory = model.rollout(start, ControlAction(), 0.1, 3)
        assert trajectory[0] == start

    def test_rollout_zero_steps(self, model):
        start = VehicleState()
        assert model.rollout(start, ControlAction(), 0.1, 0) == [start]

    def test_rollout_rejects_negative_steps(self, model):
        with pytest.raises(ValueError):
            model.rollout(VehicleState(), ControlAction(), 0.1, -1)

    def test_circular_motion_returns_near_start(self, model):
        # Constant steering at constant speed traces a circle; after one full
        # period the vehicle should be back near its starting point.
        speed = 5.0
        steer = 0.5
        steer_rad = steer * model.params.max_steer_rad
        radius = model.params.wheelbase_m / math.tan(steer_rad)
        period = 2.0 * math.pi * radius / speed
        steps = 2000
        dt = period / steps
        trajectory = model.rollout(
            VehicleState(speed_mps=speed), ControlAction(steering=steer), dt, steps
        )
        end = trajectory[-1]
        assert math.hypot(end.x_m, end.y_m) < 0.2


class TestStoppingDistance:
    def test_zero_speed_zero_distance(self, model):
        assert model.stopping_distance(0.0) == 0.0

    def test_matches_kinematic_formula(self, model):
        speed = 10.0
        expected = speed**2 / (2 * model.params.max_brake_mps2)
        assert model.stopping_distance(speed) == pytest.approx(expected)

    def test_monotone_in_speed(self, model):
        assert model.stopping_distance(12.0) > model.stopping_distance(6.0)
