"""Tests for the model-set partition and the analytic energy models."""

import pytest

from repro.core.energy import (
    baseline_interval_energy_j,
    baseline_invocations,
    energy_gain,
    expected_gating_gain,
    gating_interval_energy_j,
    local_inference_energy_j,
    offload_interval_energy_j,
    sensor_period_energy_j,
)
from repro.core.models import ModelSet, SensoryModel
from repro.platform.presets import (
    DRIVE_PX2_RESNET152,
    NAVTECH_RADAR,
    VELODYNE_LIDAR,
    ZED_CAMERA,
    ZERO_POWER_SENSOR,
)

TAU = 0.02


def _model(period_multiple: int, sensor=ZED_CAMERA, critical=False) -> SensoryModel:
    return SensoryModel(
        name=f"model-p{period_multiple}",
        period_s=period_multiple * TAU,
        compute=DRIVE_PX2_RESNET152,
        sensor=sensor,
        critical=critical,
    )


class TestSensoryModel:
    def test_discretized_period(self):
        assert _model(1).discretized_period(TAU) == 1
        assert _model(2).discretized_period(TAU) == 2

    def test_with_sensor_and_period(self):
        model = _model(1)
        radar_model = model.with_sensor(NAVTECH_RADAR)
        assert radar_model.sensor is NAVTECH_RADAR
        assert radar_model.name == model.name
        slower = model.with_period(0.05)
        assert slower.period_s == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            SensoryModel(name="", period_s=0.02)
        with pytest.raises(ValueError):
            SensoryModel(name="m", period_s=0.0)
        with pytest.raises(ValueError):
            SensoryModel(name="m", period_s=0.02, payload_bytes=0)


class TestModelSet:
    def test_partition(self):
        model_set = ModelSet.from_models(
            [_model(1, critical=True), _model(2), _model(3)]
        )
        assert len(model_set.critical) == 1
        assert len(model_set.optimizable) == 2

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            ModelSet(models=[_model(1), _model(1)])

    def test_validate_requires_both_subsets(self):
        with pytest.raises(ValueError):
            ModelSet.from_models([_model(1), _model(2)])
        with pytest.raises(ValueError):
            ModelSet.from_models([_model(1, critical=True)])

    def test_get_and_iteration(self):
        models = [_model(1, critical=True), _model(2)]
        model_set = ModelSet.from_models(models)
        assert model_set.get("model-p2") is models[1]
        with pytest.raises(KeyError):
            model_set.get("missing")
        assert list(model_set) == models
        assert len(model_set) == 2

    def test_discretized_periods(self):
        model_set = ModelSet.from_models([_model(1, critical=True), _model(2)])
        assert model_set.discretized_periods(TAU) == {"model-p1": 1, "model-p2": 2}


class TestAnalyticEnergyModels:
    def test_local_inference_energy(self):
        assert local_inference_energy_j(_model(1)) == pytest.approx(0.119)

    def test_sensor_period_energy(self):
        model = _model(1, sensor=NAVTECH_RADAR)
        assert sensor_period_energy_j(model, TAU, measurement_on=True) == pytest.approx(
            TAU * 24.0
        )
        assert sensor_period_energy_j(model, TAU, measurement_on=False) == pytest.approx(
            TAU * 2.4
        )

    def test_baseline_invocations(self):
        assert baseline_invocations(4, 1) == 4
        assert baseline_invocations(4, 2) == 2
        assert baseline_invocations(3, 2) == 2
        assert baseline_invocations(0, 2) == 0

    def test_baseline_interval_energy(self):
        model = _model(1, sensor=ZERO_POWER_SENSOR)
        assert baseline_interval_energy_j(model, TAU, 4) == pytest.approx(4 * 0.119)

    def test_gating_reduces_to_baseline_when_not_applicable(self):
        model = _model(2)
        assert gating_interval_energy_j(model, TAU, 2, gate_sensor=True) == pytest.approx(
            baseline_interval_energy_j(model, TAU, 2)
        )

    # ------------------------------------------------------------------
    # The paper's Table III 4-tau column, reproduced analytically.
    # ------------------------------------------------------------------
    @pytest.mark.parametrize(
        "sensor, period_multiple, expected_percent",
        [
            (ZED_CAMERA, 1, 75.0),
            (ZED_CAMERA, 2, 50.0),
            (NAVTECH_RADAR, 1, 68.93),
            (NAVTECH_RADAR, 2, 45.53),
            (VELODYNE_LIDAR, 1, 64.82),
            (VELODYNE_LIDAR, 2, 41.91),
        ],
    )
    def test_sensor_gating_4tau_gains_match_paper(
        self, sensor, period_multiple, expected_percent
    ):
        model = _model(period_multiple, sensor=sensor)
        gain = expected_gating_gain(model, TAU, delta_max=4, gate_sensor=True).gain
        assert 100.0 * gain == pytest.approx(expected_percent, abs=0.5)

    def test_model_gating_saves_less_than_sensor_gating(self):
        model = _model(1, sensor=NAVTECH_RADAR)
        sensor_gated = gating_interval_energy_j(model, TAU, 4, gate_sensor=True)
        model_gated = gating_interval_energy_j(model, TAU, 4, gate_sensor=False)
        assert sensor_gated < model_gated < baseline_interval_energy_j(model, TAU, 4)

    def test_offload_interval_energy_without_fallback(self):
        model = _model(1, sensor=ZERO_POWER_SENSOR)
        energy = offload_interval_energy_j(
            model, TAU, 4, transmission_energy_j=0.014, fallback_invoked=False
        )
        assert energy == pytest.approx(3 * 0.014 + 0.119)

    def test_offload_fallback_adds_one_local_inference(self):
        model = _model(1, sensor=ZERO_POWER_SENSOR)
        no_fallback = offload_interval_energy_j(model, TAU, 4, 0.014, fallback_invoked=False)
        fallback = offload_interval_energy_j(model, TAU, 4, 0.014, fallback_invoked=True)
        assert fallback - no_fallback == pytest.approx(0.119)

    def test_offload_not_applicable_reduces_to_baseline(self):
        model = _model(2, sensor=ZERO_POWER_SENSOR)
        assert offload_interval_energy_j(model, TAU, 2, 0.014) == pytest.approx(
            baseline_interval_energy_j(model, TAU, 2)
        )

    def test_offloading_beats_gating_for_compute_only_model(self):
        model = _model(1, sensor=ZERO_POWER_SENSOR)
        offload = offload_interval_energy_j(model, TAU, 4, transmission_energy_j=0.014)
        gating = gating_interval_energy_j(
            _model(1, sensor=ZED_CAMERA), TAU, 4, gate_sensor=False
        )
        baseline_offload = baseline_interval_energy_j(model, TAU, 4)
        baseline_gating = baseline_interval_energy_j(_model(1, sensor=ZED_CAMERA), TAU, 4)
        # Fig. 5 ordering: offloading gains exceed model-gating gains.
        assert energy_gain(baseline_offload, offload) > energy_gain(baseline_gating, gating)

    def test_energy_gain_edge_cases(self):
        assert energy_gain(0.0, 1.0) == 0.0
        assert energy_gain(2.0, 1.0) == pytest.approx(0.5)
        assert energy_gain(1.0, 2.0) == pytest.approx(-1.0)

    def test_interval_gain_clamps_at_zero(self):
        gain = expected_gating_gain(_model(2), TAU, delta_max=1, gate_sensor=False).gain
        assert gain == 0.0
