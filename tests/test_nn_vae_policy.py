"""Tests for the VAE and the MLP policy."""

import numpy as np
import pytest

from repro.nn.policy import MLPPolicy
from repro.nn.vae import VariationalAutoencoder


class TestVariationalAutoencoder:
    def test_encode_decode_shapes(self):
        vae = VariationalAutoencoder(input_dim=16, latent_dim=4, hidden_dim=32, seed=0)
        batch = np.random.default_rng(0).uniform(size=(8, 16))
        mean, log_var = vae.encode(batch)
        assert mean.shape == (8, 4)
        assert log_var.shape == (8, 4)
        assert vae.decode(mean).shape == (8, 16)

    def test_features_are_deterministic(self):
        vae = VariationalAutoencoder(input_dim=8, latent_dim=3, seed=1)
        batch = np.random.default_rng(1).uniform(size=(4, 8))
        assert np.array_equal(vae.features(batch), vae.features(batch))

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(2)
        # Structured data: two prototype scans plus noise.
        prototypes = rng.uniform(size=(2, 12))
        data = np.vstack([
            prototypes[rng.integers(0, 2)] + rng.normal(0, 0.02, size=12)
            for _ in range(128)
        ])
        vae = VariationalAutoencoder(input_dim=12, latent_dim=2, hidden_dim=32, seed=2)
        history = vae.fit(data, epochs=15, batch_size=32)
        assert history[-1].total < history[0].total

    def test_train_step_rejects_wrong_width(self):
        vae = VariationalAutoencoder(input_dim=8, latent_dim=2)
        with pytest.raises(ValueError):
            vae.train_step(np.ones((4, 9)))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            VariationalAutoencoder(input_dim=0)
        with pytest.raises(ValueError):
            VariationalAutoencoder(input_dim=4, beta=-1.0)

    def test_fit_rejects_bad_epochs(self):
        vae = VariationalAutoencoder(input_dim=4)
        with pytest.raises(ValueError):
            vae.fit(np.ones((4, 4)), epochs=0)


class TestMLPPolicy:
    def test_action_shape_and_bounds(self):
        policy = MLPPolicy(input_dim=7, seed=0)
        action = policy.act(np.zeros(7))
        assert action.shape == (2,)
        assert np.all(np.abs(action) <= 1.0)

    def test_rejects_wrong_feature_length(self):
        policy = MLPPolicy(input_dim=7)
        with pytest.raises(ValueError):
            policy.act(np.zeros(5))

    def test_flat_parameter_round_trip(self):
        policy = MLPPolicy(input_dim=4, hidden_dims=(8,), seed=0)
        vector = policy.get_flat_parameters()
        assert vector.size == policy.num_parameters()
        policy.set_flat_parameters(np.zeros_like(vector))
        assert np.all(policy.act(np.ones(4)) == 0.0)
        policy.set_flat_parameters(vector)
        assert policy.get_flat_parameters() == pytest.approx(vector)

    def test_different_parameters_change_behaviour(self):
        policy = MLPPolicy(input_dim=4, hidden_dims=(8,), seed=0)
        features = np.ones(4)
        baseline = policy.act(features).copy()
        rng = np.random.default_rng(3)
        policy.set_flat_parameters(rng.normal(size=policy.num_parameters()))
        assert not np.allclose(policy.act(features), baseline)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            MLPPolicy(input_dim=0)
        with pytest.raises(ValueError):
            MLPPolicy(input_dim=4, hidden_dims=())
