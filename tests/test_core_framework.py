"""Integration tests for the SEO framework facade."""

import dataclasses

import pytest

from repro.core.framework import SEOConfig, SEOFramework
from repro.sim.scenario import ScenarioConfig


class TestSEOConfig:
    def test_rejects_unknown_optimization(self):
        with pytest.raises(ValueError):
            SEOConfig(optimization="dvfs")

    def test_rejects_unknown_controller(self):
        with pytest.raises(ValueError):
            SEOConfig(controller="mpc")

    def test_rejects_empty_detector_periods(self):
        with pytest.raises(ValueError):
            SEOConfig(detector_period_multiples=())

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            SEOConfig(tau_s=0.0)

    def test_detector_name_is_stable(self):
        config = SEOConfig()
        assert config.detector_name(1) == "detector-p1tau"
        assert config.detector_name(2) == "detector-p2tau"


class TestSEOFrameworkConstruction:
    def test_builds_detectors_and_model_set(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        assert set(framework.detectors) == {"detector-p1tau", "detector-p2tau"}
        assert len(framework.model_set.critical) == 1
        assert len(framework.model_set.optimizable) == 2

    def test_lookup_table_built_when_requested(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        assert framework.lookup_table is not None
        without = SEOFramework(
            dataclasses.replace(fast_seo_config, use_lookup_table=False)
        )
        assert without.lookup_table is None

    def test_with_config_creates_variant(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        variant = framework.with_config(optimization="model_gating")
        assert variant.config.optimization == "model_gating"
        assert framework.config.optimization == "offload"


class TestEpisodes:
    def test_episode_report_structure(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        report = framework.run_episode(0)
        assert report.steps > 0
        assert report.duration_s == pytest.approx(report.steps * fast_seo_config.tau_s)
        assert set(report.gain_by_model) == {"detector-p1tau", "detector-p2tau"}
        assert report.delta_max_samples
        assert all(0 <= d <= fast_seo_config.max_deadline_periods for d in report.delta_max_samples)
        for name, baseline in report.baseline_by_model_j.items():
            assert baseline >= 0.0
            assert report.energy_by_model_j[name] >= 0.0

    def test_offloading_yields_positive_gains(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        report = framework.run_episode(0)
        assert report.overall_gain > 0.0
        assert report.offloads_issued > 0

    def test_gating_yields_positive_gains(self, fast_seo_config):
        framework = SEOFramework(
            dataclasses.replace(fast_seo_config, optimization="model_gating")
        )
        report = framework.run_episode(0)
        assert report.overall_gain > 0.0
        assert report.offloads_issued == 0

    def test_no_optimization_yields_zero_gain(self, fast_seo_config):
        framework = SEOFramework(dataclasses.replace(fast_seo_config, optimization="none"))
        report = framework.run_episode(0)
        assert report.overall_gain == pytest.approx(0.0, abs=1e-9)

    def test_fast_detector_gains_at_least_slow_detector(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        report = framework.run_episode(0)
        assert (
            report.gain_by_model["detector-p1tau"]
            >= report.gain_by_model["detector-p2tau"]
        )

    def test_empty_road_reaches_maximum_deadline(self, fast_seo_config, small_lookup_grid):
        config = dataclasses.replace(
            fast_seo_config,
            scenario=ScenarioConfig(num_obstacles=0, road_length_m=40.0, seed=2),
        )
        framework = SEOFramework(config)
        report = framework.run_episode(0)
        assert report.success
        assert report.mean_delta_max == pytest.approx(config.max_deadline_periods)
        assert report.shield_interventions == 0

    def test_unfiltered_case_has_no_interventions(self, fast_seo_config):
        framework = SEOFramework(dataclasses.replace(fast_seo_config, filtered=False))
        report = framework.run_episode(0)
        assert report.shield_interventions == 0

    def test_episodes_are_reproducible(self, fast_seo_config):
        first = SEOFramework(fast_seo_config).run_episode(0)
        second = SEOFramework(fast_seo_config).run_episode(0)
        assert first.overall_gain == pytest.approx(second.overall_gain)
        assert first.steps == second.steps
        assert first.delta_max_samples == second.delta_max_samples

    def test_different_episodes_differ(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        first = framework.run_episode(0)
        second = framework.run_episode(1)
        assert (
            first.delta_max_samples != second.delta_max_samples
            or first.overall_gain != second.overall_gain
        )

    def test_run_filters_successful_episodes(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        reports = framework.run(2, only_successful=True)
        assert reports
        assert all(report.success for report in reports) or len(reports) == 2

    def test_run_rejects_nonpositive_episodes(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        with pytest.raises(ValueError):
            framework.run(0)

    def test_safety_oblivious_mode_gains_at_least_aware(self, fast_seo_config):
        aware = SEOFramework(
            dataclasses.replace(fast_seo_config, optimization="model_gating")
        ).run_episode(0)
        oblivious = SEOFramework(
            dataclasses.replace(
                fast_seo_config, optimization="model_gating", safety_aware=False
            )
        ).run_episode(0)
        assert oblivious.overall_gain >= aware.overall_gain - 1e-9
        assert oblivious.mean_delta_max >= aware.mean_delta_max
