"""Tests for the runtime subsystem: executors and the lookup-table cache."""

import dataclasses

import pytest

from repro.core.framework import SEOFramework
from repro.core.intervals import SafeIntervalEstimator
from repro.runtime.cache import LookupTableCache, cache_key, set_default_cache
from repro.runtime.executor import (
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)


@pytest.fixture
def isolated_cache():
    """Install a fresh process-wide cache for the duration of a test."""
    cache = LookupTableCache()
    previous = set_default_cache(cache)
    yield cache
    set_default_cache(previous)


class TestSerialExecutor:
    def test_matches_framework_run(self, fast_seo_config):
        expected = SEOFramework(fast_seo_config).run(3)
        assert SerialExecutor().run(fast_seo_config, 3) == expected

    def test_reuses_prebuilt_framework(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        executor = SerialExecutor(framework=framework)
        executor.run(fast_seo_config, 1)
        assert executor._framework is framework

    def test_rejects_nonpositive_episodes(self, fast_seo_config):
        with pytest.raises(ValueError):
            SerialExecutor().run(fast_seo_config, 0)


class TestParallelExecutor:
    def test_bit_identical_to_serial(self, fast_seo_config):
        """Same seeds => same energy totals, gains and delta_max samples."""
        serial = SerialExecutor().run(fast_seo_config, 4)
        parallel = ParallelExecutor(jobs=2).run(fast_seo_config, 4)
        assert [report.episode for report in parallel] == [0, 1, 2, 3]
        for left, right in zip(serial, parallel, strict=True):
            assert left.energy_by_model_j == right.energy_by_model_j
            assert left.gain_by_model == right.gain_by_model
            assert left.delta_max_samples == right.delta_max_samples
        assert parallel == serial

    def test_bit_identical_for_gating(self, fast_seo_config):
        config = dataclasses.replace(fast_seo_config, optimization="model_gating")
        assert ParallelExecutor(jobs=3).run(config, 3) == SerialExecutor().run(config, 3)

    def test_framework_run_jobs_parameter(self, fast_seo_config):
        framework = SEOFramework(fast_seo_config)
        assert framework.run(3, jobs=2) == framework.run(3)

    def test_single_job_degrades_to_serial(self, fast_seo_config):
        assert ParallelExecutor(jobs=1).run(fast_seo_config, 2) == SerialExecutor().run(
            fast_seo_config, 2
        )

    def test_nonpositive_jobs_uses_cpu_count(self):
        assert ParallelExecutor(jobs=0).jobs >= 1

    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ParallelExecutor)
        assert make_executor(4).jobs == 4


class TestLookupTableCache:
    def test_sweep_sharing_grid_builds_once(self, fast_seo_config, isolated_cache):
        """Three configs sharing one LookupGrid build the table exactly once."""
        variants = [
            fast_seo_config,
            dataclasses.replace(fast_seo_config, optimization="model_gating", seed=9),
            dataclasses.replace(fast_seo_config, filtered=False),
        ]
        tables = [SEOFramework(config).lookup_table for config in variants]
        assert isolated_cache.misses == 1
        assert isolated_cache.hits == 2
        assert tables[0] is tables[1] is tables[2]

    def test_different_grid_builds_again(self, fast_seo_config, isolated_cache):
        SEOFramework(fast_seo_config)
        other_grid = dataclasses.replace(fast_seo_config.lookup_grid, num_bearings=7)
        SEOFramework(dataclasses.replace(fast_seo_config, lookup_grid=other_grid))
        assert isolated_cache.misses == 2
        assert isolated_cache.hits == 0

    def test_tau_change_invalidates_key(self, fast_seo_config, isolated_cache):
        # tau changes the estimator horizon/step, which the table depends on.
        SEOFramework(fast_seo_config)
        SEOFramework(dataclasses.replace(fast_seo_config, tau_s=0.025))
        assert isolated_cache.misses == 2

    def test_cached_table_matches_direct_build(
        self, fast_estimator, small_lookup_grid
    ):
        from repro.core.lookup import DeadlineLookupTable

        cache = LookupTableCache()
        cached = cache.get_or_build(fast_estimator, grid=small_lookup_grid)
        direct = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        assert (cached.values == direct.values).all()
        assert cached.horizon_s == direct.horizon_s

    def test_disk_persistence(self, fast_estimator, small_lookup_grid, tmp_path):
        writer = LookupTableCache(cache_dir=tmp_path)
        built = writer.get_or_build(fast_estimator, grid=small_lookup_grid)
        assert writer.misses == 1

        reader = LookupTableCache(cache_dir=tmp_path)
        loaded = reader.get_or_build(fast_estimator, grid=small_lookup_grid)
        assert reader.disk_hits == 1
        assert reader.misses == 0
        assert (loaded.values == built.values).all()
        # Second call in the same process is a memory hit.
        reader.get_or_build(fast_estimator, grid=small_lookup_grid)
        assert reader.hits == 1

    @pytest.mark.parametrize(
        "garbage",
        [
            b"this is not an npz file at all",
            b"PK\x03\x04truncated-zip-header",
            b"",
        ],
        ids=["random-bytes", "truncated-zip", "empty"],
    )
    def test_corrupt_disk_cache_is_rebuilt(
        self, fast_estimator, small_lookup_grid, tmp_path, garbage
    ):
        """A corrupt/truncated .npz is a miss: rebuild and overwrite, no error."""
        writer = LookupTableCache(cache_dir=tmp_path)
        built = writer.get_or_build(fast_estimator, grid=small_lookup_grid)
        path = writer.path_for(cache_key(fast_estimator, small_lookup_grid, 1.0))
        assert path.exists()
        path.write_bytes(garbage)

        reader = LookupTableCache(cache_dir=tmp_path)
        rebuilt = reader.get_or_build(fast_estimator, grid=small_lookup_grid)
        assert reader.misses == 1
        assert reader.disk_hits == 0
        assert (rebuilt.values == built.values).all()

        # The garbage file was overwritten with a loadable table.
        rereader = LookupTableCache(cache_dir=tmp_path)
        rereader.get_or_build(fast_estimator, grid=small_lookup_grid)
        assert rereader.disk_hits == 1

    def test_clear_resets_counters(self, fast_estimator, small_lookup_grid):
        cache = LookupTableCache()
        cache.get_or_build(fast_estimator, grid=small_lookup_grid)
        cache.clear()
        assert cache.size == 0
        assert (cache.hits, cache.disk_hits, cache.misses) == (0, 0, 0)

    def test_cache_key_includes_barrier_and_vehicle(self, small_lookup_grid):
        base = SafeIntervalEstimator(horizon_s=0.08, step_s=0.005)
        key = cache_key(base, small_lookup_grid, 1.0)
        assert key is not None
        longer = SafeIntervalEstimator(horizon_s=0.1, step_s=0.005)
        assert cache_key(longer, small_lookup_grid, 1.0) != key
        assert cache_key(base, small_lookup_grid, 2.0) != key

    def test_cache_key_includes_vehicle_braking(self, small_lookup_grid):
        """Regression: estimators differing only in vehicle max_brake_mps2
        must not share a cached table (it drives negative-throttle rollouts)."""
        from repro.dynamics.bicycle import KinematicBicycleModel
        from repro.dynamics.params import VehicleParams

        strong = SafeIntervalEstimator(
            dynamics=KinematicBicycleModel(VehicleParams(max_brake_mps2=7.0)),
            horizon_s=0.08,
            step_s=0.005,
        )
        weak = SafeIntervalEstimator(
            dynamics=KinematicBicycleModel(VehicleParams(max_brake_mps2=1.0)),
            horizon_s=0.08,
            step_s=0.005,
        )
        assert cache_key(strong, small_lookup_grid, 1.0) != cache_key(
            weak, small_lookup_grid, 1.0
        )

    def test_worker_initializer_propagates_cache_dir(self, tmp_path):
        from repro.runtime.cache import default_cache
        from repro.runtime.executor import _init_worker

        previous = set_default_cache(LookupTableCache())
        try:
            _init_worker(tmp_path)
            assert default_cache().cache_dir == tmp_path
            memo = default_cache()
            _init_worker(tmp_path)  # matching dir: cache (and its memo) kept
            assert default_cache() is memo
        finally:
            set_default_cache(previous)
