"""Tests for safe-interval estimation, discretization and the lookup table."""

import math

import numpy as np
import pytest

from repro.contracts import ContractViolationError
from repro.core.intervals import (
    SafeIntervalEstimator,
    discretize_deadline,
    discretize_period,
)
from repro.core.lookup import DeadlineLookupTable, LookupGrid
from repro.core.safety import SafetyFunction, SafetyInputs
from repro.dynamics.state import ControlAction, VehicleState
from repro.sim.obstacles import Obstacle


class TestDiscretizePeriod:
    def test_exact_multiples(self):
        assert discretize_period(0.02, 0.02) == 1
        assert discretize_period(0.04, 0.02) == 2
        assert discretize_period(0.1, 0.02) == 5

    def test_non_multiples_round_up(self):
        assert discretize_period(0.03, 0.02) == 2
        assert discretize_period(0.021, 0.02) == 2

    def test_period_smaller_than_tau(self):
        assert discretize_period(0.01, 0.02) == 1

    def test_float_representation_of_exact_multiple(self):
        # 0.06 / 0.02 is not exactly 3.0 in floating point; eq. (4) must still
        # treat it as an exact multiple.
        assert discretize_period(0.06, 0.02) == 3

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            discretize_period(0.0, 0.02)
        with pytest.raises(ValueError):
            discretize_period(0.02, 0.0)


class TestDiscretizeDeadline:
    def test_floor_behaviour(self):
        assert discretize_deadline(0.079, 0.02) == 3
        assert discretize_deadline(0.0, 0.02) == 0
        assert discretize_deadline(0.019, 0.02) == 0

    def test_exact_multiple(self):
        assert discretize_deadline(0.08, 0.02) == 4
        assert discretize_deadline(0.06, 0.02) == 3

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            discretize_deadline(-0.1, 0.02)
        with pytest.raises(ValueError):
            discretize_deadline(0.1, 0.0)


class TestSafeIntervalEstimator:
    def test_far_obstacle_returns_horizon(self, fast_estimator):
        state = VehicleState(speed_mps=8.0)
        obstacle = Obstacle(x_m=50.0, y_m=0.0, radius_m=1.0)
        delta = fast_estimator.estimate(state, obstacle, ControlAction())
        assert delta == pytest.approx(fast_estimator.horizon_s)

    def test_already_unsafe_returns_zero(self, fast_estimator):
        state = VehicleState(speed_mps=10.0)
        obstacle = Obstacle(x_m=2.0, y_m=0.0, radius_m=1.0)
        assert fast_estimator.estimate(state, obstacle, ControlAction()) == 0.0

    def test_monotone_in_initial_distance(self, fast_estimator):
        control = ControlAction(throttle=0.5)
        state = VehicleState(speed_mps=10.0)
        deltas = [
            fast_estimator.estimate(state, Obstacle(x_m=d, y_m=0.0, radius_m=1.0), control)
            for d in (9.0, 9.4, 9.8, 11.0, 14.0)
        ]
        assert all(b >= a for a, b in zip(deltas, deltas[1:], strict=False))

    def test_braking_control_never_shortens_interval(self, fast_estimator):
        state = VehicleState(speed_mps=10.0)
        obstacle = Obstacle(x_m=9.5, y_m=0.0, radius_m=1.0)
        accelerating = fast_estimator.estimate(state, obstacle, ControlAction(throttle=1.0))
        braking = fast_estimator.estimate(state, obstacle, ControlAction(throttle=-1.0))
        assert braking >= accelerating

    def test_estimate_from_world(self, small_world, fast_estimator):
        delta = fast_estimator.estimate_from_world(small_world, ControlAction())
        assert 0.0 <= delta <= fast_estimator.horizon_s

    def test_estimate_from_empty_world(self, empty_world, fast_estimator):
        assert fast_estimator.estimate_from_world(
            empty_world, ControlAction()
        ) == pytest.approx(fast_estimator.horizon_s)

    def test_batch_matches_scalar_path(self, fast_estimator):
        distances = np.array([3.0, 6.0, 9.0, 15.0, 30.0])
        bearings = np.array([0.0, 0.1, -0.2, 0.5, 0.0])
        speeds = np.array([10.0, 8.0, 6.0, 12.0, 4.0])
        steerings = np.zeros(5)
        throttles = np.array([0.0, 0.5, -0.5, 1.0, 0.0])
        batch = fast_estimator.estimate_batch(
            distances, bearings, speeds, steerings, throttles, obstacle_radius_m=1.0
        )
        for index in range(5):
            centre_range = distances[index] + 1.0
            obstacle = Obstacle(
                x_m=float(centre_range * np.cos(bearings[index])),
                y_m=float(centre_range * np.sin(bearings[index])),
                radius_m=1.0,
            )
            scalar = fast_estimator.estimate(
                VehicleState(speed_mps=float(speeds[index])),
                obstacle,
                ControlAction(
                    steering=float(steerings[index]), throttle=float(throttles[index])
                ),
            )
            # The batch path integrates with Euler instead of RK4; results may
            # differ by at most one integration step.
            assert batch[index] == pytest.approx(scalar, abs=fast_estimator.step_s)

    def test_estimate_one_matches_batch(self, fast_estimator):
        """The scalar hot path must agree with the vectorized evaluation."""
        cases = [
            (3.0, 0.0, 10.0, 0.0, 0.0),
            (6.0, 0.1, 8.0, 0.3, 0.5),
            (9.0, -0.2, 6.0, -0.7, -0.5),
            (15.0, 0.5, 12.0, 1.5, 2.0),  # controls beyond [-1, 1] get clipped
            (30.0, 3.0, 4.0, 0.0, 1.0),
            (2.0, math.pi, 9.0, 0.0, -1.0),
        ]
        for distance, bearing, speed, steering, throttle in cases:
            batch = fast_estimator.estimate_batch(
                np.array([distance]),
                np.array([bearing]),
                np.array([speed]),
                np.array([steering]),
                np.array([throttle]),
                obstacle_radius_m=1.5,
            )[0]
            one = fast_estimator.estimate_one(
                distance, bearing, speed, steering, throttle, obstacle_radius_m=1.5
            )
            assert one == pytest.approx(batch, abs=1e-12)

    def test_estimate_one_scalar_fallback_for_custom_barrier(self):
        class AlwaysSafe(SafetyFunction):
            def evaluate(self, inputs, control=None):
                return 1.0

        estimator = SafeIntervalEstimator(
            safety_function=AlwaysSafe(), horizon_s=0.08, step_s=0.01
        )
        assert estimator.estimate_one(5.0, 0.0, 5.0, 0.0, 0.0) == pytest.approx(0.08)

    def test_batch_requires_matching_shapes(self, fast_estimator):
        # The kernel raises ValueError itself; with runtime contracts on,
        # the declared (N,) specs reject the call first.
        with pytest.raises((ValueError, ContractViolationError)):
            fast_estimator.estimate_batch(
                np.zeros(3), np.zeros(2), np.zeros(3), np.zeros(3), np.zeros(3)
            )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SafeIntervalEstimator(horizon_s=0.0)
        with pytest.raises(ValueError):
            SafeIntervalEstimator(horizon_s=0.05, step_s=0.1)


class TestDeadlineLookupTable:
    def test_build_shape_and_bounds(self, fast_estimator, small_lookup_grid):
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        assert table.size == small_lookup_grid.num_entries
        assert np.all(table.values >= 0.0)
        assert np.all(table.values <= fast_estimator.horizon_s + 1e-12)

    def test_query_no_obstacle_returns_horizon(self, fast_estimator, small_lookup_grid):
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        inputs = SafetyInputs(distance_m=1e6, bearing_rad=0.0, speed_mps=5.0)
        assert table.query(inputs, ControlAction()) == pytest.approx(table.horizon_s)

    def test_query_beyond_grid_returns_horizon(self, fast_estimator, small_lookup_grid):
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        inputs = SafetyInputs(distance_m=200.0, bearing_rad=0.0, speed_mps=5.0)
        assert table.query(inputs, ControlAction()) == pytest.approx(table.horizon_s)

    def test_query_is_conservative_wrt_exact_value(self, fast_estimator, small_lookup_grid):
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        rng = np.random.default_rng(0)
        for _ in range(30):
            distance = float(rng.uniform(1.0, 25.0))
            bearing = float(rng.uniform(-0.6, 0.6))
            speed = float(rng.uniform(2.0, 11.0))
            control = ControlAction(
                steering=float(rng.uniform(-1, 1)), throttle=float(rng.uniform(-1, 1))
            )
            inputs = SafetyInputs(distance_m=distance, bearing_rad=bearing, speed_mps=speed)
            exact = fast_estimator.estimate_batch(
                np.array([distance]),
                np.array([bearing]),
                np.array([speed]),
                np.array([control.steering]),
                np.array([control.throttle]),
            )[0]
            # Conservative: the table should not report a longer safe interval
            # than the exact evaluation by more than one integration step.
            assert table.query(inputs, control) <= exact + fast_estimator.step_s + 1e-9

    def test_close_obstacle_yields_shorter_deadline_than_far(self, fast_estimator, small_lookup_grid):
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        control = ControlAction(throttle=0.5)
        close = table.query(
            SafetyInputs(distance_m=4.0, bearing_rad=0.0, speed_mps=10.0), control
        )
        far = table.query(
            SafetyInputs(distance_m=25.0, bearing_rad=0.0, speed_mps=10.0), control
        )
        assert close <= far

    def test_query_counter_increments(self, fast_estimator, small_lookup_grid):
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        table.query(SafetyInputs(distance_m=5.0, bearing_rad=0.0, speed_mps=5.0), ControlAction())
        table.query(SafetyInputs(distance_m=5.0, bearing_rad=0.0, speed_mps=5.0), ControlAction())
        assert table.queries == 2

    def test_bearing_grid_is_endpoint_exclusive(self, small_lookup_grid):
        bearings = small_lookup_grid.bearing_values()
        assert bearings.size == small_lookup_grid.num_bearings
        assert bearings[0] == pytest.approx(-math.pi)
        # -pi and +pi are the same physical angle; only one may be gridded.
        assert np.all(bearings < math.pi)
        wrapped = np.arctan2(np.sin(bearings), np.cos(bearings))
        assert np.unique(np.round(wrapped, 12)).size == bearings.size

    def test_query_wraps_bearing_at_pi(self, fast_estimator, small_lookup_grid):
        """Bearings just either side of +-pi are the same rear obstacle."""
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        control = ControlAction(throttle=0.5)
        for epsilon in (1e-3, 0.05, 0.3):
            rear_left = table.query(
                SafetyInputs(
                    distance_m=6.0, bearing_rad=math.pi - epsilon, speed_mps=8.0
                ),
                control,
            )
            rear_right = table.query(
                SafetyInputs(
                    distance_m=6.0, bearing_rad=-math.pi + epsilon, speed_mps=8.0
                ),
                control,
            )
            assert rear_left == pytest.approx(rear_right)

    def test_rear_obstacle_not_binned_as_frontal(self, fast_estimator, small_lookup_grid):
        """A bearing of -3.1 rad must map to the rear bin, not a distant one."""
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        bearings = small_lookup_grid.bearing_values()
        wrapped_error = np.arctan2(
            np.sin(bearings - (-3.1)), np.cos(bearings - (-3.1))
        )
        best = int(np.argmin(np.abs(wrapped_error)))
        # The nearest wrapped bin is the -pi (rear) bin.
        assert bearings[best] == pytest.approx(-math.pi)
        # And the query for the rear obstacle is never shorter than what the
        # rear-bin neighbourhood holds (it must not fall into a frontal bin).
        distances = small_lookup_grid.distance_values()
        speeds = small_lookup_grid.speed_values()
        d_idx = int(np.searchsorted(distances, 6.0, side="right") - 1)
        s_idx = int(np.searchsorted(speeds, 8.0, side="left"))
        neighbourhood = np.take(
            table.values[d_idx, :, s_idx], [best - 1, best, best + 1], axis=0, mode="wrap"
        )
        value = table.query(
            SafetyInputs(distance_m=6.0, bearing_rad=-3.1, speed_mps=8.0),
            ControlAction(),
        )
        assert value >= float(neighbourhood.min()) - 1e-12

    def test_query_bearing_conservative_across_wrap(
        self, fast_estimator, small_lookup_grid
    ):
        """Quantization may never report longer intervals than the estimator."""
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        for bearing in (-3.1, 3.1, math.pi - 1e-6, -math.pi):
            inputs = SafetyInputs(distance_m=4.0, bearing_rad=bearing, speed_mps=10.0)
            exact = fast_estimator.estimate_one(4.0, bearing, 10.0, 0.0, 0.0)
            assert table.query(inputs, ControlAction()) <= exact + fast_estimator.step_s + 1e-9

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            LookupGrid(max_distance_m=0.0)
        with pytest.raises(ValueError):
            LookupGrid(num_bearings=1)
        with pytest.raises(ValueError):
            LookupGrid(num_steering_bins=0)

    def test_save_and_load_round_trip(self, fast_estimator, small_lookup_grid, tmp_path):
        table = DeadlineLookupTable.build(fast_estimator, grid=small_lookup_grid)
        path = tmp_path / "table.npz"
        table.save(path)
        loaded = DeadlineLookupTable.load(path)
        assert loaded.grid == table.grid
        assert loaded.horizon_s == pytest.approx(table.horizon_s)
        assert np.array_equal(loaded.values, table.values)
        inputs = SafetyInputs(distance_m=7.0, bearing_rad=0.1, speed_mps=6.0)
        control = ControlAction(throttle=0.3)
        assert loaded.query(inputs, control) == pytest.approx(table.query(inputs, control))

    def test_values_shape_mismatch_rejected(self, small_lookup_grid):
        with pytest.raises(ValueError):
            DeadlineLookupTable(
                grid=small_lookup_grid, values=np.zeros((2, 2, 2, 2, 2)), horizon_s=0.08
            )
