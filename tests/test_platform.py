"""Tests for the edge-platform power models and the energy ledger."""

import pytest

from repro.platform.compute import ComputeProfile
from repro.platform.energy_ledger import (
    CATEGORY_COMPUTE,
    CATEGORY_SENSOR_MEASUREMENT,
    CATEGORY_TRANSMISSION,
    EnergyLedger,
    EnergyRecord,
)
from repro.platform.presets import (
    DRIVE_PX2_RESNET152,
    NAVTECH_RADAR,
    VELODYNE_LIDAR,
    ZED_CAMERA,
    ZERO_POWER_SENSOR,
)
from repro.platform.sensors import SensorPowerSpec


class TestComputeProfile:
    def test_paper_characterization(self):
        # 17 ms at 7 W (Drive PX2 + TensorRT ResNet-152, Section VI-A).
        assert DRIVE_PX2_RESNET152.latency_s == pytest.approx(0.017)
        assert DRIVE_PX2_RESNET152.power_w == pytest.approx(7.0)
        assert DRIVE_PX2_RESNET152.energy_per_inference_j == pytest.approx(0.119)

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            ComputeProfile(name="bad", latency_s=0.0, power_w=1.0)
        with pytest.raises(ValueError):
            ComputeProfile(name="bad", latency_s=0.1, power_w=-1.0)

    def test_scaled_profile(self):
        scaled = DRIVE_PX2_RESNET152.scaled(latency_factor=0.5, power_factor=2.0)
        assert scaled.latency_s == pytest.approx(0.0085)
        assert scaled.power_w == pytest.approx(14.0)

    def test_scaled_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            DRIVE_PX2_RESNET152.scaled(latency_factor=0.0)


class TestSensorPowerSpec:
    def test_paper_table3_specs(self):
        assert ZED_CAMERA.measurement_power_w == pytest.approx(1.9)
        assert ZED_CAMERA.mechanical_power_w == 0.0
        assert NAVTECH_RADAR.measurement_power_w == pytest.approx(21.6)
        assert NAVTECH_RADAR.mechanical_power_w == pytest.approx(2.4)
        assert VELODYNE_LIDAR.measurement_power_w == pytest.approx(9.6)
        assert ZERO_POWER_SENSOR.total_power_w == 0.0

    def test_sensing_energy_with_and_without_measurement(self):
        energy_on = NAVTECH_RADAR.sensing_energy_j(0.02, measurement_on=True)
        energy_off = NAVTECH_RADAR.sensing_energy_j(0.02, measurement_on=False)
        assert energy_on == pytest.approx(0.02 * 24.0)
        assert energy_off == pytest.approx(0.02 * 2.4)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            ZED_CAMERA.sensing_energy_j(-1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            SensorPowerSpec(name="bad", measurement_power_w=-1.0)


class TestEnergyLedger:
    def test_charge_and_total(self):
        ledger = EnergyLedger()
        ledger.charge("det", CATEGORY_COMPUTE, 0.1, step=0)
        ledger.charge("det", CATEGORY_TRANSMISSION, 0.05, step=1)
        ledger.charge("vae", CATEGORY_COMPUTE, 0.02, step=1)
        assert ledger.total_j() == pytest.approx(0.17)

    def test_zero_charges_are_not_recorded(self):
        ledger = EnergyLedger()
        ledger.charge("det", CATEGORY_COMPUTE, 0.0)
        assert ledger.records == []

    def test_negative_charge_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.charge("det", CATEGORY_COMPUTE, -0.1)
        with pytest.raises(ValueError):
            EnergyRecord(model="det", category=CATEGORY_COMPUTE, energy_j=-1.0)

    def test_total_by_model_and_category(self):
        ledger = EnergyLedger()
        ledger.charge("a", CATEGORY_COMPUTE, 0.1)
        ledger.charge("a", CATEGORY_SENSOR_MEASUREMENT, 0.2)
        ledger.charge("b", CATEGORY_COMPUTE, 0.3)
        assert ledger.total_by_model() == pytest.approx({"a": 0.3, "b": 0.3})
        assert ledger.total_by_category() == pytest.approx(
            {CATEGORY_COMPUTE: 0.4, CATEGORY_SENSOR_MEASUREMENT: 0.2}
        )

    def test_total_for_filters(self):
        ledger = EnergyLedger()
        ledger.charge("a", CATEGORY_COMPUTE, 0.1)
        ledger.charge("b", CATEGORY_COMPUTE, 0.2)
        ledger.charge("b", CATEGORY_TRANSMISSION, 0.4)
        assert ledger.total_for(models=["b"]) == pytest.approx(0.6)
        assert ledger.total_for(categories=[CATEGORY_COMPUTE]) == pytest.approx(0.3)
        assert ledger.total_for(models=["b"], categories=[CATEGORY_COMPUTE]) == pytest.approx(0.2)

    def test_breakdown_and_extend_and_clear(self):
        first = EnergyLedger()
        first.charge("a", CATEGORY_COMPUTE, 0.1)
        second = EnergyLedger()
        second.charge("a", CATEGORY_COMPUTE, 0.2)
        first.extend(second)
        assert first.breakdown()[("a", CATEGORY_COMPUTE)] == pytest.approx(0.3)
        first.clear()
        assert first.total_j() == 0.0
