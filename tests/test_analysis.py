"""Tests for the analysis layer (metrics, histograms, tables)."""

import pytest

from repro.analysis.histograms import delta_histogram
from repro.analysis.metrics import aggregate_reports, mean_and_std
from repro.analysis.tables import format_table
from repro.core.framework import EpisodeReport


def _report(
    episode=0, success=True, gain_fast=0.5, gain_slow=0.3, delta_samples=(4, 3, 2)
) -> EpisodeReport:
    report = EpisodeReport(episode=episode)
    report.steps = 100
    report.completed = success
    report.collided = not success
    report.delta_max_samples = list(delta_samples)
    report.gain_by_model = {"det-fast": gain_fast, "det-slow": gain_slow}
    report.energy_by_model_j = {"det-fast": 1.0 - gain_fast, "det-slow": 1.0 - gain_slow}
    report.baseline_by_model_j = {"det-fast": 1.0, "det-slow": 1.0}
    report.overall_gain = 0.5 * (gain_fast + gain_slow)
    report.shield_interventions = 3
    report.offloads_issued = 10
    report.offload_deadline_misses = 1
    return report


class TestMeanAndStd:
    def test_empty_sequence(self):
        assert mean_and_std([]) == (0.0, 0.0)

    def test_simple_values(self):
        mean, std = mean_and_std([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_accepts_numpy_arrays(self):
        import numpy as np

        # Regression: `if not values:` raised "truth value is ambiguous" here.
        mean, std = mean_and_std(np.array([1.0, 3.0]))
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)
        assert mean_and_std(np.array([])) == (0.0, 0.0)


class TestAggregateReports:
    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            aggregate_reports([])

    def test_basic_aggregation(self):
        summary = aggregate_reports([_report(0, gain_fast=0.4), _report(1, gain_fast=0.6)])
        assert summary.episodes == 2
        assert summary.successful_episodes == 2
        assert summary.success_rate == 1.0
        assert summary.gain_for("det-fast") == pytest.approx(0.5)
        assert summary.model_gains["det-fast"].mean_gain_percent == pytest.approx(50.0)
        assert summary.average_model_gain == pytest.approx(0.5 * (0.5 + 0.3))
        assert summary.offloads_issued == 20

    def test_only_successful_filtering(self):
        reports = [_report(0, success=True, gain_fast=0.5), _report(1, success=False, gain_fast=0.0)]
        summary = aggregate_reports(reports, only_successful=True)
        assert summary.successful_episodes == 1
        assert summary.gain_for("det-fast") == pytest.approx(0.5)
        assert summary.collision_episodes == 1

    def test_falls_back_to_all_when_none_succeed(self):
        reports = [_report(0, success=False), _report(1, success=False)]
        summary = aggregate_reports(reports, only_successful=True)
        assert summary.successful_episodes == 0
        assert summary.gain_for("det-fast") == pytest.approx(0.5)

    def test_delta_samples_are_pooled(self):
        summary = aggregate_reports(
            [_report(0, delta_samples=(4, 4)), _report(1, delta_samples=(1,))]
        )
        assert sorted(summary.delta_max_samples) == [1, 4, 4]

    def test_unknown_model_gain_is_zero(self):
        summary = aggregate_reports([_report(0)])
        assert summary.gain_for("missing") == 0.0


class TestDeltaHistogram:
    def test_counts_and_frequencies(self):
        histogram = delta_histogram([1, 2, 2, 4, 4, 4], max_delta=4)
        assert histogram.counts[4] == 3
        assert histogram.frequency(2) == pytest.approx(2 / 6)
        assert sum(histogram.frequencies.values()) == pytest.approx(1.0)

    def test_values_above_max_are_clamped(self):
        histogram = delta_histogram([7, 8], max_delta=4)
        assert histogram.counts[4] == 2

    def test_zero_bucket_optional(self):
        histogram = delta_histogram([0, 1], max_delta=4, include_zero=False)
        assert 0 not in histogram.counts
        assert histogram.counts[1] == 2  # zero clamped up into the first bucket

    def test_mean(self):
        histogram = delta_histogram([2, 4], max_delta=4)
        assert histogram.mean() == pytest.approx(3.0)

    def test_empty_samples(self):
        histogram = delta_histogram([], max_delta=4)
        assert histogram.mean() == 0.0
        assert all(frequency == 0.0 for frequency in histogram.frequencies.values())

    def test_rejects_bad_max_delta(self):
        with pytest.raises(ValueError):
            delta_histogram([1], max_delta=0)


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["b", 2]], title="demo")
        assert "demo" in text
        assert "name" in text and "value" in text
        assert "1.235" in text
        assert "b" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_is_fine(self):
        text = format_table(["a"], [])
        assert "a" in text
