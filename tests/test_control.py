"""Tests for the controllers and the aggregated control inputs."""

import pytest

from repro.control.base import ControlInputs
from repro.control.heuristic import ObstacleAvoidanceController
from repro.control.neural import DEFAULT_FEATURE_DIM, NeuralController, default_feature_vector
from repro.control.pure_pursuit import PurePursuitController
from repro.dynamics.state import VehicleState
from repro.perception.detections import Detection, DetectionSet
from repro.sim.obstacles import Obstacle
from repro.sim.road import Road
from repro.sim.world import World


def _inputs(**overrides):
    defaults = dict(
        speed_mps=8.0,
        target_speed_mps=8.0,
        lateral_offset_m=0.0,
        heading_rad=0.0,
        road_half_width_m=6.0,
    )
    defaults.update(overrides)
    return ControlInputs(**defaults)


class TestControlInputs:
    def test_from_world_without_obstacles(self, empty_world):
        inputs = ControlInputs.from_world(empty_world, 8.0)
        assert not inputs.has_obstacle
        assert inputs.speed_mps == empty_world.state.speed_mps

    def test_from_world_with_obstacle(self):
        world = World(
            road=Road(),
            obstacles=[Obstacle(x_m=10.0, y_m=0.0, radius_m=1.0)],
            state=VehicleState(speed_mps=5.0),
        )
        inputs = ControlInputs.from_world(world, 8.0)
        assert inputs.has_obstacle
        assert inputs.obstacle_distance_m == pytest.approx(9.0)

    def test_from_detections_picks_nearest_across_sets(self, empty_world):
        sets = [
            DetectionSet(detections=[Detection(distance_m=12.0, bearing_rad=0.1)], source="a"),
            DetectionSet(
                detections=[Detection(distance_m=6.0, bearing_rad=-0.1)],
                source="b",
                stale=True,
            ),
        ]
        inputs = ControlInputs.from_detections(empty_world, sets, 8.0)
        assert inputs.obstacle_distance_m == pytest.approx(6.0)
        assert inputs.obstacle_stale

    def test_from_detections_empty(self, empty_world):
        inputs = ControlInputs.from_detections(empty_world, [], 8.0)
        assert not inputs.has_obstacle


class TestObstacleAvoidanceController:
    def test_accelerates_toward_target_speed(self):
        controller = ObstacleAvoidanceController(target_speed_mps=8.0)
        action = controller.act_from_inputs(_inputs(speed_mps=2.0))
        assert action.throttle > 0.0

    def test_brakes_above_target_speed(self):
        controller = ObstacleAvoidanceController(target_speed_mps=8.0)
        action = controller.act_from_inputs(_inputs(speed_mps=12.0))
        assert action.throttle < 0.0

    def test_steers_back_to_centre(self):
        controller = ObstacleAvoidanceController()
        left_of_centre = controller.act_from_inputs(_inputs(lateral_offset_m=2.0))
        right_of_centre = controller.act_from_inputs(_inputs(lateral_offset_m=-2.0))
        assert left_of_centre.steering < 0.0
        assert right_of_centre.steering > 0.0

    def test_steers_away_from_close_obstacle(self):
        controller = ObstacleAvoidanceController()
        obstacle_left = controller.act_from_inputs(
            _inputs(obstacle_distance_m=8.0, obstacle_bearing_rad=0.2)
        )
        obstacle_right = controller.act_from_inputs(
            _inputs(obstacle_distance_m=8.0, obstacle_bearing_rad=-0.2)
        )
        assert obstacle_left.steering < 0.0
        assert obstacle_right.steering > 0.0

    def test_brakes_for_head_on_obstacle(self):
        controller = ObstacleAvoidanceController()
        clear = controller.act_from_inputs(_inputs())
        blocked = controller.act_from_inputs(
            _inputs(obstacle_distance_m=6.0, obstacle_bearing_rad=0.0)
        )
        assert blocked.throttle < clear.throttle

    def test_ignores_far_obstacles(self):
        controller = ObstacleAvoidanceController()
        far = controller.act_from_inputs(
            _inputs(obstacle_distance_m=30.0, obstacle_bearing_rad=0.0)
        )
        clear = controller.act_from_inputs(_inputs())
        assert far.steering == pytest.approx(clear.steering)

    def test_stale_detections_brake_harder(self):
        controller = ObstacleAvoidanceController()
        fresh = controller.act_from_inputs(
            _inputs(obstacle_distance_m=6.0, obstacle_bearing_rad=0.0)
        )
        stale = controller.act_from_inputs(
            _inputs(obstacle_distance_m=6.0, obstacle_bearing_rad=0.0, obstacle_stale=True)
        )
        assert stale.throttle <= fresh.throttle

    def test_actions_always_bounded(self):
        controller = ObstacleAvoidanceController()
        action = controller.act_from_inputs(
            _inputs(
                lateral_offset_m=10.0,
                heading_rad=1.0,
                obstacle_distance_m=0.5,
                obstacle_bearing_rad=0.0,
            )
        )
        assert -1.0 <= action.steering <= 1.0
        assert -1.0 <= action.throttle <= 1.0

    def test_inputs_require_distance_and_bearing_together(self):
        with pytest.raises(ValueError):
            _inputs(obstacle_distance_m=5.0)


class TestPurePursuitController:
    def test_tracks_centreline(self):
        controller = PurePursuitController()
        off_left = controller.act_from_inputs(_inputs(lateral_offset_m=2.0))
        assert off_left.steering < 0.0

    def test_holds_target_speed(self):
        controller = PurePursuitController(target_speed_mps=8.0)
        action = controller.act_from_inputs(_inputs(speed_mps=8.0))
        assert action.throttle == pytest.approx(0.0, abs=1e-6)

    def test_ignores_obstacles(self):
        controller = PurePursuitController()
        clear = controller.act_from_inputs(_inputs())
        blocked = controller.act_from_inputs(
            _inputs(obstacle_distance_m=5.0, obstacle_bearing_rad=0.0)
        )
        assert clear.steering == pytest.approx(blocked.steering)
        assert clear.throttle == pytest.approx(blocked.throttle)


class TestNeuralController:
    def test_feature_vector_dimension(self):
        features = default_feature_vector(_inputs())
        assert features.shape == (DEFAULT_FEATURE_DIM,)

    def test_feature_vector_encodes_obstacle_presence(self):
        clear = default_feature_vector(_inputs())
        blocked = default_feature_vector(
            _inputs(obstacle_distance_m=10.0, obstacle_bearing_rad=0.3)
        )
        assert clear[3] == 0.0
        assert blocked[3] == 1.0
        assert blocked[4] < clear[4]

    def test_controller_produces_bounded_actions(self):
        controller = NeuralController()
        action = controller.act_from_inputs(_inputs())
        assert -1.0 <= action.steering <= 1.0
        assert -1.0 <= action.throttle <= 1.0

    def test_act_from_world(self, small_world):
        controller = NeuralController()
        action = controller.act(small_world)
        assert -1.0 <= action.steering <= 1.0
