"""Tests for the safety function, safety state and steering shield."""

import math

import pytest

from repro.core.safety import (
    NO_OBSTACLE_DISTANCE_M,
    BrakingDistanceBarrier,
    SafetyInputs,
    safety_state,
)
from repro.core.shield import SteeringShield
from repro.dynamics.state import ControlAction, VehicleState
from repro.sim.obstacles import Obstacle
from repro.sim.road import Road
from repro.sim.world import World


def _inputs(distance, bearing=0.0, speed=8.0, lateral=0.0, half_width=6.0):
    return SafetyInputs(
        distance_m=distance,
        bearing_rad=bearing,
        speed_mps=speed,
        lateral_offset_m=lateral,
        road_half_width_m=half_width,
    )


class TestSafetyState:
    def test_binary_mapping(self):
        assert safety_state(0.0) == 1
        assert safety_state(3.2) == 1
        assert safety_state(-0.001) == 0


class TestBrakingDistanceBarrier:
    def test_far_obstacle_is_safe(self):
        barrier = BrakingDistanceBarrier()
        assert barrier.evaluate(_inputs(distance=50.0)) > 0.0

    def test_close_obstacle_is_unsafe(self):
        barrier = BrakingDistanceBarrier()
        assert barrier.evaluate(_inputs(distance=0.5, speed=10.0)) < 0.0

    def test_required_clearance_grows_with_speed(self):
        barrier = BrakingDistanceBarrier()
        slow = barrier.required_clearance_m(_inputs(distance=10.0, speed=2.0))
        fast = barrier.required_clearance_m(_inputs(distance=10.0, speed=12.0))
        assert fast > slow

    def test_side_obstacle_needs_less_clearance(self):
        barrier = BrakingDistanceBarrier()
        head_on = barrier.required_clearance_m(_inputs(distance=10.0, bearing=0.0))
        beside = barrier.required_clearance_m(_inputs(distance=10.0, bearing=math.pi / 2))
        assert beside < head_on
        assert beside == pytest.approx(barrier.clearance_m)

    def test_no_obstacle_reports_large_h(self):
        barrier = BrakingDistanceBarrier()
        inputs = SafetyInputs(
            distance_m=NO_OBSTACLE_DISTANCE_M, bearing_rad=0.0, speed_mps=8.0
        )
        assert barrier.evaluate(inputs) == pytest.approx(NO_OBSTACLE_DISTANCE_M)

    def test_zero_speed_reduces_to_clearance(self):
        barrier = BrakingDistanceBarrier(clearance_m=1.0)
        assert barrier.evaluate(_inputs(distance=1.0, speed=0.0)) == pytest.approx(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BrakingDistanceBarrier(max_brake_mps2=0.0)
        with pytest.raises(ValueError):
            BrakingDistanceBarrier(clearance_m=-1.0)

    def test_inputs_validation(self):
        with pytest.raises(ValueError):
            SafetyInputs(distance_m=-1.0, bearing_rad=0.0, speed_mps=1.0)
        with pytest.raises(ValueError):
            SafetyInputs(distance_m=1.0, bearing_rad=0.0, speed_mps=-1.0)

    def test_from_world_extracts_nearest_view(self):
        world = World(
            road=Road(),
            obstacles=[Obstacle(x_m=10.0, y_m=0.0, radius_m=1.0)],
            state=VehicleState(speed_mps=6.0),
        )
        inputs = SafetyInputs.from_world(world)
        assert inputs.obstacle_present
        assert inputs.distance_m == pytest.approx(9.0)
        assert inputs.speed_mps == pytest.approx(6.0)

    def test_from_world_without_obstacles(self, empty_world):
        inputs = SafetyInputs.from_world(empty_world)
        assert not inputs.obstacle_present


class TestSteeringShield:
    def test_passes_through_when_safe(self):
        shield = SteeringShield()
        raw = ControlAction(steering=0.3, throttle=0.5)
        filtered, decision = shield.filter_action(_inputs(distance=40.0), raw)
        assert filtered == raw
        assert not decision.intervened
        assert decision.safe == 1

    def test_intervenes_when_unsafe(self):
        shield = SteeringShield()
        raw = ControlAction(steering=0.0, throttle=0.8)
        filtered, decision = shield.filter_action(
            _inputs(distance=2.0, bearing=0.05, speed=10.0), raw
        )
        assert decision.intervened
        assert decision.safe == 0
        assert filtered.throttle < raw.throttle
        assert filtered.steering != raw.steering

    def test_never_less_evasive_than_controller(self):
        shield = SteeringShield()
        # The controller already steers hard away from an obstacle on the left.
        raw = ControlAction(steering=-0.9, throttle=0.0)
        filtered, _ = shield.filter_action(
            _inputs(distance=3.0, bearing=0.3, speed=8.0), raw
        )
        assert filtered.steering <= raw.steering + 1e-9

    def test_steers_away_from_obstacle_side(self):
        shield = SteeringShield()
        raw = ControlAction()
        left_obstacle, _ = shield.filter_action(
            _inputs(distance=2.0, bearing=0.4, speed=9.0), raw
        )
        right_obstacle, _ = shield.filter_action(
            _inputs(distance=2.0, bearing=-0.4, speed=9.0), raw
        )
        assert left_obstacle.steering < 0.0
        assert right_obstacle.steering > 0.0

    def test_road_edge_awareness_flips_direction(self):
        shield = SteeringShield()
        raw = ControlAction()
        # Obstacle slightly to the right would normally push the vehicle left,
        # but the vehicle is already near the left road edge.
        filtered, _ = shield.filter_action(
            _inputs(distance=2.0, bearing=-0.1, speed=9.0, lateral=4.5, half_width=5.0),
            raw,
        )
        assert filtered.steering < 0.0

    def test_creep_behaviour_at_low_speed(self):
        shield = SteeringShield()
        raw = ControlAction(throttle=-1.0)
        filtered, _ = shield.filter_action(
            _inputs(distance=1.5, bearing=0.2, speed=1.0), raw
        )
        assert filtered.throttle > 0.0

    def test_counters_track_interventions(self):
        shield = SteeringShield()
        shield.filter_action(_inputs(distance=40.0), ControlAction())
        shield.filter_action(_inputs(distance=1.0, speed=10.0), ControlAction())
        assert shield.evaluations == 2
        assert shield.interventions == 1
        assert shield.intervention_rate == pytest.approx(0.5)
        shield.reset_counters()
        assert shield.evaluations == 0

    def test_filter_adapter_uses_world_state(self, small_world):
        shield = SteeringShield()
        action = shield.filter(small_world, ControlAction(throttle=0.5))
        assert -1.0 <= action.steering <= 1.0

    def test_no_obstacle_never_intervenes(self):
        shield = SteeringShield()
        inputs = SafetyInputs(
            distance_m=NO_OBSTACLE_DISTANCE_M, bearing_rad=0.0, speed_mps=8.0
        )
        filtered, decision = shield.filter_action(inputs, ControlAction(throttle=1.0))
        assert not decision.intervened
        assert filtered.throttle == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SteeringShield(intervention_margin_m=-1.0)
        with pytest.raises(ValueError):
            SteeringShield(blend_band_m=0.0)


class _ConstantBarrier:
    """Stub safety function pinning ``h`` to an exact value."""

    def __init__(self, h_value):
        self.h_value = h_value

    def evaluate(self, inputs, control=None):
        return self.h_value


class TestShieldBlendContinuity:
    """Regression: the correction must grow from 0 at the intervention margin.

    Severity used to be ``1 - h / blend_band_m`` (band 3 m) while the
    intervention starts at ``intervention_margin_m`` (2 m), so the correction
    jumped from 0 to ~1/3 the instant ``h`` crossed the margin.
    """

    RAW = ControlAction(steering=0.2, throttle=0.6)
    INPUTS = _inputs(distance=5.0, bearing=0.3, speed=8.0)

    def _filtered_at(self, h_value):
        shield = SteeringShield(safety_function=_ConstantBarrier(h_value))
        filtered, _ = shield.filter_action(self.INPUTS, self.RAW)
        return filtered

    def test_no_jump_at_margin(self):
        epsilon = 1e-6
        margin = SteeringShield().intervention_margin_m
        above = self._filtered_at(margin + epsilon)
        below = self._filtered_at(margin - epsilon)
        assert above == self.RAW
        assert below.steering == pytest.approx(self.RAW.steering, abs=1e-4)
        assert below.throttle == pytest.approx(self.RAW.throttle, abs=1e-4)

    def test_full_override_at_zero(self):
        at_zero = self._filtered_at(0.0)
        just_below = self._filtered_at(-1e-6)
        assert at_zero.throttle < 0.0  # hard braking
        assert at_zero.steering < 0.0  # steers away from the left obstacle
        assert just_below.steering == pytest.approx(at_zero.steering)
        assert just_below.throttle == pytest.approx(at_zero.throttle)

    def test_severity_monotone_in_band(self):
        margin = SteeringShield().intervention_margin_m
        h_values = [margin * fraction for fraction in (0.9, 0.6, 0.3, 0.0)]
        throttles = [self._filtered_at(h).throttle for h in h_values]
        assert throttles == sorted(throttles, reverse=True)

    def test_never_less_evasive_than_raw_inside_band(self):
        margin = SteeringShield().intervention_margin_m
        for h_value in (0.25 * margin, 0.5 * margin, 0.75 * margin):
            filtered = self._filtered_at(h_value)
            # Obstacle on the left: evasive direction is negative steering.
            assert filtered.steering <= self.RAW.steering + 1e-9
            assert filtered.throttle <= self.RAW.throttle + 1e-9

    def test_creep_throttle_stays_positive_inside_band(self):
        # Anti-stall takes precedence over blend continuity: a braking
        # controller at creep speed must not pin the blended throttle
        # negative and freeze the vehicle inside the intervention band.
        margin = SteeringShield().intervention_margin_m
        raw = ControlAction(steering=0.0, throttle=-1.0)
        for h_value in (0.75 * margin, 0.25 * margin, 0.0):
            shield = SteeringShield(safety_function=_ConstantBarrier(h_value))
            filtered, _ = shield.filter_action(
                _inputs(distance=3.0, bearing=0.2, speed=1.0), raw
            )
            assert filtered.throttle > 0.0
